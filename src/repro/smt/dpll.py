"""SAT solving with two watched literals, and an incremental lazy
DPLL(T) loop for equality logic.

The seed implementation was the textbook recursive DPLL: every decision
level copied the clause list, re-scanned all clauses to propagate units,
and the DPLL(T) loop re-propagated a growing clause database from zero
for every blocked boolean model.  This module replaces it with the
modern iterative architecture:

* an explicit **trail** of assigned literals with chronological
  backtracking (no clause copying, O(1) undo per literal);
* **two watched literals** per clause, so propagation touches only the
  clauses whose watch becomes false instead of scanning the database;
* an **incremental clause database** (:class:`WatchedSolver.add_clause`),
  so the DPLL(T) loop of :func:`dpllt_equality` keeps the CNF, the atom
  table, the watch lists and every learned blocking clause across
  blocked models instead of rebuilding them.

Found models are *shrunk* to a satisfying partial assignment (one true
literal is kept per clause) before they are returned.  This mirrors the
partial models the seed's recursive search produced and keeps the
DPLL(T) blocking clauses short — blocking a total assignment would
enumerate every don't-care combination of unconstrained theory atoms.

Public API (``dpll``, ``sat``, ``propositionally_valid``,
``dpllt_equality``, ``euf_valid``, :class:`TheoryResult`) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .cnf import CNF, AtomTable, Clause, cnf_of
from .euf import congruence_closure_consistent, is_equality_atom
from .terms import App, Term

Assignment = Dict[int, bool]


class WatchedSolver:
    """Iterative DPLL over an incrementally extensible clause database.

    The clause database and watch lists persist across :meth:`solve`
    calls; each call restarts the search from decision level zero, which
    is exactly what the lazy-SMT blocking loop needs (the database only
    ever grows).
    """

    __slots__ = ("_clauses", "_watches", "_units", "_vars", "_var_seen", "_unsat")

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._units: List[int] = []
        self._vars: List[int] = []  # in first-occurrence order (decision order)
        self._var_seen: set[int] = set()
        self._unsat = False
        for clause in clauses:
            self.add_clause(clause)

    def _note_vars(self, literals: Iterable[int]) -> None:
        for literal in literals:
            variable = abs(literal)
            if variable not in self._var_seen:
                self._var_seen.add(variable)
                self._vars.append(variable)

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause; duplicates are collapsed, tautologies dropped."""
        literals: List[int] = []
        seen: set[int] = set()
        for literal in clause:
            if -literal in seen:
                return  # tautological clause: always satisfied
            if literal not in seen:
                seen.add(literal)
                literals.append(literal)
        if not literals:
            self._unsat = True
            return
        self._note_vars(literals)
        if len(literals) == 1:
            self._units.append(literals[0])
            return
        index = len(self._clauses)
        self._clauses.append(literals)
        self._watches.setdefault(literals[0], []).append(index)
        self._watches.setdefault(literals[1], []).append(index)

    def solve(self, assumptions: Iterable[int] = ()) -> Optional[Assignment]:
        """A satisfying (partial) assignment, or None if unsatisfiable.

        ``assumptions`` are treated as level-zero facts; they are always
        included in a returned model.
        """
        if self._unsat:
            return None
        assign: Assignment = {}
        trail: List[int] = []
        # (trail length at decision, decided literal, both polarities tried?)
        decisions: List[Tuple[int, int, bool]] = []
        clauses = self._clauses
        watches = self._watches
        pinned: List[int] = []  # assumption literals, kept through shrinking

        def enqueue(literal: int) -> bool:
            variable = abs(literal)
            value = literal > 0
            current = assign.get(variable)
            if current is None:
                assign[variable] = value
                trail.append(literal)
                return True
            return current == value

        for literal in self._units:
            if not enqueue(literal):
                return None
        for literal in assumptions:
            if not enqueue(literal):
                return None
            pinned.append(literal)

        head = 0
        while True:
            conflict = False
            # -- unit propagation over the watch lists --------------------
            while head < len(trail):
                false_literal = -trail[head]
                head += 1
                watchers = watches.get(false_literal)
                if not watchers:
                    continue
                i = 0
                while i < len(watchers):
                    clause_index = watchers[i]
                    clause = clauses[clause_index]
                    if clause[0] == false_literal:
                        clause[0], clause[1] = clause[1], clause[0]
                    other = clause[0]
                    other_value = assign.get(abs(other))
                    if other_value is not None and (other > 0) == other_value:
                        i += 1  # satisfied by the other watch
                        continue
                    for j in range(2, len(clause)):
                        candidate = clause[j]
                        value = assign.get(abs(candidate))
                        if value is None or (candidate > 0) == value:
                            clause[1], clause[j] = clause[j], clause[1]
                            watches.setdefault(candidate, []).append(clause_index)
                            watchers[i] = watchers[-1]
                            watchers.pop()
                            break
                    else:
                        if other_value is None:
                            assign[abs(other)] = other > 0
                            trail.append(other)
                            i += 1
                        else:
                            conflict = True
                            break
                if conflict:
                    break
            if conflict:
                # -- chronological backtracking ----------------------------
                while decisions:
                    base, literal, flipped = decisions.pop()
                    for undone in trail[base:]:
                        del assign[abs(undone)]
                    del trail[base:]
                    head = base
                    if not flipped:
                        decisions.append((base, -literal, True))
                        assign[abs(literal)] = literal < 0
                        trail.append(-literal)
                        break
                else:
                    return None
                continue
            # -- all propagated: decide ------------------------------------
            decision = 0
            for variable in self._vars:
                if variable not in assign:
                    decision = variable
                    break
            if not decision:
                return self._shrink(assign, trail, pinned)
            decisions.append((len(trail), decision, False))
            assign[decision] = True
            trail.append(decision)

    def _shrink(
        self, assign: Assignment, trail: List[int], pinned: List[int]
    ) -> Assignment:
        """Reduce a total model to a satisfying partial assignment.

        For every clause the true literal assigned *earliest* on the
        trail is kept (deterministic); everything else is dropped, except
        assumption literals.  The result satisfies every clause and is
        the incremental analogue of the partial models the old recursive
        search returned — crucially it keeps DPLL(T) blocking clauses
        from mentioning don't-care atoms.
        """
        position = {abs(literal): rank for rank, literal in enumerate(trail)}
        # Assumptions and unit-clause literals are forced: always kept.
        needed: set[int] = {abs(literal) for literal in pinned}
        needed.update(abs(literal) for literal in self._units)
        for clause in self._clauses:
            best: Optional[int] = None
            best_rank = -1
            satisfied_by_needed = False
            for literal in clause:
                variable = abs(literal)
                if assign.get(variable) != (literal > 0):
                    continue
                if variable in needed:
                    satisfied_by_needed = True
                    break
                rank = position.get(variable, 0)
                if best is None or rank < best_rank:
                    best, best_rank = variable, rank
            if not satisfied_by_needed and best is not None:
                needed.add(best)
        return {variable: assign[variable] for variable in needed if variable in assign}


def dpll(clauses: CNF, assignment: Optional[Assignment] = None) -> Optional[Assignment]:
    """Satisfying assignment for a CNF, or None if unsatisfiable."""
    solver = WatchedSolver(clauses)
    assumptions = [
        variable if value else -variable
        for variable, value in (assignment or {}).items()
    ]
    return solver.solve(assumptions)


def sat(term: Term) -> Optional[Assignment]:
    """Propositional satisfiability of a boolean term (atoms opaque)."""
    clauses, _table = cnf_of(term)
    return dpll(clauses)


def propositionally_valid(term: Term) -> bool:
    """True iff the term is a propositional tautology (valid for *every*
    theory interpretation of its atoms) — a sound fast path for the
    bounded solver."""
    negated = App("not", (term,))
    return sat(negated) is None


# ---------------------------------------------------------------------------
# Lazy DPLL(T) for equality logic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TheoryResult:
    """Outcome of the DPLL(T) search."""

    satisfiable: bool
    boolean_model: Optional[Assignment] = None
    equalities: Tuple[Tuple[Term, Term], ...] = ()
    disequalities: Tuple[Tuple[Term, Term], ...] = ()
    models_blocked: int = 0


def _theory_literals(
    model: Assignment, table: AtomTable
) -> Optional[tuple[list, list]]:
    """Split a boolean model into asserted equalities / disequalities.

    Returns None if the model asserts a non-equality atom (outside the
    EUF fragment)."""
    equalities: list = []
    disequalities: list = []
    for index, value in model.items():
        term = table.term_of(index)
        if term is None:
            continue  # Tseitin definition variable
        if not is_equality_atom(term):
            return None
        assert isinstance(term, App)
        left, right = term.args
        positive = value if term.op == "==" else not value
        if positive:
            equalities.append((left, right))
        else:
            disequalities.append((left, right))
    return equalities, disequalities


def dpllt_equality(term: Term, max_models: int = 10_000) -> Optional[TheoryResult]:
    """Lazy DPLL(T) for formulas whose atoms are ``==``/``!=`` between
    ground terms (boolean structure arbitrary).

    The boolean search is *incremental*: the CNF is converted once, the
    watch lists persist, and each theory conflict appends one blocking
    clause to the live solver instead of re-propagating a growing clause
    list from scratch.

    Returns a :class:`TheoryResult`, or ``None`` if the formula contains
    atoms outside the equality fragment (caller should fall back to the
    bounded enumerator).
    """
    clauses, table = cnf_of(term)
    solver = WatchedSolver(clauses)
    blocked = 0
    for _ in range(max_models):
        model = solver.solve()
        if model is None:
            return TheoryResult(False, models_blocked=blocked)
        split = _theory_literals(model, table)
        if split is None:
            return None  # outside the fragment
        equalities, disequalities = split
        if congruence_closure_consistent(equalities, disequalities):
            return TheoryResult(
                True,
                boolean_model=model,
                equalities=tuple(equalities),
                disequalities=tuple(disequalities),
                models_blocked=blocked,
            )
        # Block this boolean model (only its theory-atom part).
        conflict = tuple(
            -index if value else index
            for index, value in sorted(model.items())
            if table.term_of(index) is not None
        )
        if not conflict:
            return TheoryResult(False, models_blocked=blocked)
        solver.add_clause(conflict)
        blocked += 1
    return None  # model budget exhausted: undecided


def euf_valid(term: Term, max_models: int = 10_000) -> Optional[bool]:
    """Validity in the EUF fragment: True/False, or None if undecided /
    outside the fragment."""
    result = dpllt_equality(App("not", (term,)), max_models=max_models)
    if result is None:
        return None
    return not result.satisfiable
