"""Validity checking by rewriting + small-scope model search.

This module is the repository's substitute for the Z3 backend that
HyperViper uses (see ``docs/ARCHITECTURE.md``).  Given a boolean term,
:func:`check_validity` returns one of three verdicts:

* ``PROVED`` — rewriting folded the formula to ``true`` (sound,
  assumption-free), or every assignment in an *exhaustively enumerable*
  scope satisfies it and the caller declared the scope complete;
* ``REFUTED`` — a concrete counterexample assignment was found (always
  sound: the model is checked by evaluation);
* ``BOUNDED`` — no counterexample exists within the searched scope, but
  the scope is not known to be complete.  The verifier treats ``BOUNDED``
  like Z3's ``unsat`` of the negation within quantifier instantiation
  limits: acceptance is reported with the bound that was used.

``UNKNOWN`` is reported when the formula contains operations the
evaluator cannot interpret.

Performance architecture (see ``src/repro/smt/README.md``): terms are
hash-consed, so ``simplify``/``free_symvars``/``int_constants`` are
memoized per unique node; the boolean and theory fast paths run on the
CDCL core of :mod:`repro.smt.dpll` (first-UIP clause learning, VSIDS,
phase saving, Luby restarts) fed by a polarity-aware Tseitin
conversion, with a *propagator stack* pushing theory facts into the
search at every fixpoint — congruence closure for ``==``/``!=`` atoms
(:class:`repro.smt.euf.EqualityPropagator`) composed with an
incremental difference-logic constraint graph for integer
``<``/``<=``/``>``/``>=`` atoms
(:class:`repro.smt.arith.DifferenceLogicPropagator`).  Only formulas
outside those fragments (non-linear arithmetic, collection operations,
uninterpreted-function comparisons) reach the bounded enumeration,
which evaluates a *compiled* closure (:mod:`repro.smt.compile`) over a
single mutated assignment dict; and whole queries are cached across
calls (:mod:`repro.smt.cache`) keyed on the interned formula.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .session import SolverSession

from . import cache as validity_cache
from .arith import is_difference_atom, normalize_equality_atom
from .cnf import BOOL_CONNECTIVES
from .compile import compile_term
from .euf import is_equality_atom
from .simplify import simplify
from .sorts import INT, IntSort, Scope, Sort
from .terms import App, Const, SymVar, Term, evaluate_term, free_symvars, int_constants


class Verdict(Enum):
    PROVED = "proved"
    BOUNDED = "bounded"
    REFUTED = "refuted"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Result:
    verdict: Verdict
    model: Optional[Mapping[str, Any]] = None
    checked_assignments: int = 0
    #: True when this result was served from the cross-call validity cache.
    from_cache: bool = False
    #: Process-wide cache counters at the time this result was produced.
    cache_hits: int = 0
    cache_misses: int = 0

    def is_valid(self) -> bool:
        """Acceptance: PROVED or BOUNDED (no counterexample in scope)."""
        return self.verdict in (Verdict.PROVED, Verdict.BOUNDED)

    def __bool__(self) -> bool:
        return self.is_valid()


_MAX_ASSIGNMENTS = 200_000


def _integer_domain(sort: Sort) -> bool:
    """A sort override that keeps difference-logic reasoning sound: the
    full integers, or a finite enumerated sort whose values are all
    integers (validity over ℤ subsumes validity over any subset)."""
    if isinstance(sort, IntSort):
        return True
    values = getattr(sort, "values", None)  # finite enumerated sorts (vcgen)
    if values is not None:
        return all(
            isinstance(value, int) and not isinstance(value, bool)
            for value in values
        )
    return False


def _orders_safe(term: Term, sorts: Mapping[str, Sort] | None) -> bool:
    """Whether difference-logic reasoning may run on this query.

    A ``sorts`` override reinterpreting an INT-labelled variable over a
    non-integer domain (a collection-valued resource CELL) would make
    order/offset arithmetic on that variable unsound, so the order
    fragment is disabled exactly when such a variable occurs inside a
    difference-relevant atom — an order atom, or an equality the
    difference propagator would turn into edges."""
    if not sorts:
        return True
    unsafe = {
        name for name, sort in sorts.items() if not _integer_domain(sort)
    }
    if not unsafe:
        return True
    stack = [term]
    visited: set = set()
    while stack:
        current = stack.pop()
        if not isinstance(current, App):
            continue
        if current.op in BOOL_CONNECTIVES:
            marker = id(current)
            if marker in visited:
                continue
            visited.add(marker)
            stack.extend(current.args)
            continue
        if is_difference_atom(current) or (
            is_equality_atom(current)
            and normalize_equality_atom(current) is not None
        ):
            if any(v.name in unsafe for v in free_symvars(current)):
                return False
    return True


def check_validity(
    formula: Term,
    scope: Scope | None = None,
    sorts: Mapping[str, Sort] | None = None,
    exhaustive: bool = False,
    use_sat: bool = True,
    use_cache: bool = True,
    session: "SolverSession | None" = None,
    cache: "validity_cache.ValidityCache | None" = None,
) -> Result:
    """Check that ``formula`` holds for all assignments to its free
    symbolic variables.

    ``sorts`` overrides the sort recorded in each :class:`SymVar`;
    ``exhaustive=True`` asserts that the provided scope covers the entire
    semantic domain (finite problems), upgrading BOUNDED to PROVED.

    With ``use_sat`` (default), two sound fast paths run before the
    bounded enumeration: a CDCL check of the boolean skeleton (a
    propositional tautology is valid under every theory) and, for
    formulas whose atoms are ground (dis)equalities and/or integer
    difference-logic comparisons, a DPLL(T) search with eager theory
    propagation (congruence closure + difference constraint graph) —
    both yield genuine PROVED verdicts, not bounded ones.  Passing a
    :class:`~repro.smt.session.SolverSession`
    routes both fast paths through its shared incremental solvers
    (assumption-activated VCs over one clause database) instead of
    building a fresh solver per query.  Verdicts are unchanged on the
    propositional and pure-theory fragments; on the *mixed*
    equality/order fragment a warmed session may additionally decide a
    query the fresh search left to the enumerator — a sound
    strengthening of BOUNDED into PROVED, never a change of acceptance.

    With ``use_cache`` (default), decisive results are memoized across
    calls keyed on the interned formula + scope + sorts; repeated
    discharges of syntactically identical VCs are O(1).  When the
    process-wide cache has its persistent layer active (loaded from a
    ``--cache-dir`` store, or explicitly enabled), in-memory misses
    additionally consult the fingerprint-keyed persistent entries, so
    repeated CLI/CI invocations start warm.  Cache hits are flagged on
    the result (``from_cache``) and the process-wide hit/miss counters
    ride along on every result.

    ``cache`` passes an explicit :class:`~repro.smt.cache.ValidityCache`
    handle for this query; by default the current process default
    (:func:`repro.smt.cache.get_default`) is consulted — which
    :func:`repro.api.open_cache` scopes without any global singleton in
    the public path.
    """
    scope = scope or Scope()
    scope = scope.widen(tuple(int_constants(formula)))

    cache = cache if cache is not None else validity_cache.get_default()
    key = None
    pkey = None
    if use_cache:
        key = validity_cache.make_key(formula, scope, sorts, exhaustive, use_sat)
        if key is not None:
            hit = cache.get(key)
            if hit is not None:
                return replace(
                    hit,
                    model=dict(hit.model) if hit.model is not None else None,
                    from_cache=True,
                    cache_hits=cache.hits,
                    cache_misses=cache.misses,
                )
            if cache.persistence_enabled:
                pkey = validity_cache.persistent_key(
                    formula, scope, sorts, exhaustive, use_sat
                )
                if pkey is not None:
                    persisted = cache.get_persistent(pkey)
                    if persisted is not None:
                        # Promote into the in-memory layer so later
                        # lookups are O(1) identity-keyed hits.
                        cache.put(key, persisted)
                        return replace(
                            persisted,
                            model=dict(persisted.model)
                            if persisted.model is not None
                            else None,
                            from_cache=True,
                            cache_hits=cache.hits,
                            cache_misses=cache.misses,
                        )

    result = _check_validity(formula, scope, sorts, exhaustive, use_sat, session)
    if key is not None and result.verdict is not Verdict.UNKNOWN:
        # Store a private model snapshot so callers mutating their copy
        # cannot corrupt later hits.
        cache.put(
            key,
            replace(
                result,
                model=dict(result.model) if result.model is not None else None,
            ),
            persistent_key=pkey,
        )
    return replace(
        result,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )


def _check_validity(
    formula: Term,
    scope: Scope,
    sorts: Mapping[str, Sort] | None,
    exhaustive: bool,
    use_sat: bool,
    session: "SolverSession | None" = None,
) -> Result:
    simplified = simplify(formula)
    if simplified == Const(True):
        return Result(Verdict.PROVED)
    if simplified == Const(False):
        return Result(Verdict.REFUTED, model={})

    if use_sat:
        # The equality fragment is domain-generic and always on; the
        # order fragment is gated per query by _orders_safe.
        allow_orders = _orders_safe(simplified, sorts)
        if session is not None:
            if session.propositionally_valid(simplified):
                return Result(Verdict.PROVED)
            theory = session.theory_valid(simplified, allow_orders=allow_orders)
        else:
            from .dpll import euf_valid, propositionally_valid

            if propositionally_valid(simplified):
                return Result(Verdict.PROVED)
            theory = euf_valid(simplified, allow_orders=allow_orders)
        if theory is True:
            return Result(Verdict.PROVED)
        # theory False means a *theory* countermodel exists but no
        # concrete assignment is constructed; fall through so the
        # enumerator can exhibit one (or bound out).

    variables = sorted(free_symvars(simplified), key=lambda v: v.name)
    if not variables:
        # Closed but not folded: evaluate directly.
        try:
            value = evaluate_term(simplified, {})
        except Exception:  # noqa: BLE001
            return Result(Verdict.UNKNOWN)
        if value:
            return Result(Verdict.PROVED, checked_assignments=1)
        return Result(Verdict.REFUTED, model={}, checked_assignments=1)

    domains = []
    for variable in variables:
        sort = (sorts or {}).get(variable.name, variable.sort)
        domains.append(list(sort.domain(scope)))

    try:
        evaluator = compile_term(simplified)
    except Exception:  # noqa: BLE001 — compilation is best-effort
        evaluator = lambda env: evaluate_term(simplified, env)  # noqa: E731

    names = [variable.name for variable in variables]
    assignment: dict[str, Any] = {}
    checked = 0
    for combo in itertools.product(*domains):
        for name, value in zip(names, combo):
            assignment[name] = value
        checked += 1
        if checked > _MAX_ASSIGNMENTS:
            return Result(Verdict.BOUNDED, checked_assignments=checked - 1)
        try:
            value = evaluator(assignment)
        except Exception:  # noqa: BLE001
            return Result(Verdict.UNKNOWN, checked_assignments=checked)
        if not value:
            return Result(
                Verdict.REFUTED, model=dict(assignment), checked_assignments=checked
            )
    verdict = Verdict.PROVED if exhaustive else Verdict.BOUNDED
    return Result(verdict, checked_assignments=checked)


def find_model(
    formula: Term,
    scope: Scope | None = None,
    sorts: Mapping[str, Sort] | None = None,
    session: "SolverSession | None" = None,
) -> Optional[Mapping[str, Any]]:
    """Find an assignment satisfying ``formula`` (SAT), or None in scope."""
    from .terms import negate

    result = check_validity(negate(formula), scope, sorts, session=session)
    if result.verdict == Verdict.REFUTED:
        return result.model
    return None
