"""Validity checking by rewriting + small-scope model search.

This module is the repository's substitute for the Z3 backend that
HyperViper uses (see DESIGN.md "Substitutions").  Given a boolean term,
:func:`check_validity` returns one of three verdicts:

* ``PROVED`` — rewriting folded the formula to ``true`` (sound,
  assumption-free), or every assignment in an *exhaustively enumerable*
  scope satisfies it and the caller declared the scope complete;
* ``REFUTED`` — a concrete counterexample assignment was found (always
  sound: the model is checked by evaluation);
* ``BOUNDED`` — no counterexample exists within the searched scope, but
  the scope is not known to be complete.  The verifier treats ``BOUNDED``
  like Z3's ``unsat`` of the negation within quantifier instantiation
  limits: acceptance is reported with the bound that was used.

``UNKNOWN`` is reported when the formula contains operations the
evaluator cannot interpret.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional

from .simplify import simplify
from .sorts import INT, Scope, Sort
from .terms import Const, SymVar, Term, evaluate_term, free_symvars, int_constants


class Verdict(Enum):
    PROVED = "proved"
    BOUNDED = "bounded"
    REFUTED = "refuted"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Result:
    verdict: Verdict
    model: Optional[Mapping[str, Any]] = None
    checked_assignments: int = 0

    def is_valid(self) -> bool:
        """Acceptance: PROVED or BOUNDED (no counterexample in scope)."""
        return self.verdict in (Verdict.PROVED, Verdict.BOUNDED)

    def __bool__(self) -> bool:
        return self.is_valid()


_MAX_ASSIGNMENTS = 200_000


def check_validity(
    formula: Term,
    scope: Scope | None = None,
    sorts: Mapping[str, Sort] | None = None,
    exhaustive: bool = False,
    use_sat: bool = True,
) -> Result:
    """Check that ``formula`` holds for all assignments to its free
    symbolic variables.

    ``sorts`` overrides the sort recorded in each :class:`SymVar`;
    ``exhaustive=True`` asserts that the provided scope covers the entire
    semantic domain (finite problems), upgrading BOUNDED to PROVED.

    With ``use_sat`` (default), two sound fast paths run before the
    bounded enumeration: a DPLL check of the boolean skeleton (a
    propositional tautology is valid under every theory) and, for
    formulas whose atoms are ground (dis)equalities, a lazy DPLL(T) loop
    with congruence closure — both yield genuine PROVED verdicts, not
    bounded ones.
    """
    scope = scope or Scope()
    scope = scope.widen(tuple(int_constants(formula)))
    simplified = simplify(formula)
    if simplified == Const(True):
        return Result(Verdict.PROVED)
    if simplified == Const(False):
        return Result(Verdict.REFUTED, model={})

    if use_sat:
        from .dpll import euf_valid, propositionally_valid

        if propositionally_valid(simplified):
            return Result(Verdict.PROVED)
        euf = euf_valid(simplified)
        if euf is True:
            return Result(Verdict.PROVED)
        # euf False means a *theory* countermodel exists but no concrete
        # assignment is constructed; fall through so the enumerator can
        # exhibit one (or bound out).

    variables = sorted(free_symvars(simplified), key=lambda v: v.name)
    if not variables:
        # Closed but not folded: evaluate directly.
        try:
            value = evaluate_term(simplified, {})
        except Exception:  # noqa: BLE001
            return Result(Verdict.UNKNOWN)
        if value:
            return Result(Verdict.PROVED, checked_assignments=1)
        return Result(Verdict.REFUTED, model={}, checked_assignments=1)

    domains = []
    for variable in variables:
        sort = (sorts or {}).get(variable.name, variable.sort)
        domains.append(list(sort.domain(scope)))

    checked = 0
    for combo in itertools.product(*domains):
        assignment = {variable.name: value for variable, value in zip(variables, combo)}
        checked += 1
        if checked > _MAX_ASSIGNMENTS:
            return Result(Verdict.BOUNDED, checked_assignments=checked - 1)
        try:
            value = evaluate_term(simplified, assignment)
        except Exception:  # noqa: BLE001
            return Result(Verdict.UNKNOWN, checked_assignments=checked)
        if not value:
            return Result(Verdict.REFUTED, model=assignment, checked_assignments=checked)
    verdict = Verdict.PROVED if exhaustive else Verdict.BOUNDED
    return Result(verdict, checked_assignments=checked)


def find_model(
    formula: Term,
    scope: Scope | None = None,
    sorts: Mapping[str, Sort] | None = None,
) -> Optional[Mapping[str, Any]]:
    """Find an assignment satisfying ``formula`` (SAT), or None in scope."""
    from .terms import negate

    result = check_validity(negate(formula), scope, sorts)
    if result.verdict == Verdict.REFUTED:
        return result.model
    return None
