"""The retained *reference* solver: the seed's algorithms, unoptimized.

This module preserves, verbatim in structure, the pre-optimization
implementation of the solver stack — recursive AST-walking evaluation
(:func:`repro.smt.terms.evaluate_term` already *is* the reference
evaluator and is shared), uncached recursive simplification, uncached
NNF/Tseitin conversion, the clause-copying recursive DPLL with
pure-literal elimination, the non-incremental DPLL(T) loop, and the
uncached validity check.

It exists for two reasons:

* **correctness oracle** — the property suite
  (``tests/property/test_smt_core_properties.py``) asserts that the
  interned / compiled / watched-literal core agrees with this module on
  randomly generated formulas;
* **benchmark baseline** — ``benchmarks/run_benchmarks.py`` times the
  optimized core against this module on identical inputs and records
  both the speedups and verdict agreement in ``BENCH_smt.json``.

Nothing here is memoized and nothing consults the caches of
:mod:`repro.smt.intern` or :mod:`repro.smt.cache`; the only shared
infrastructure is the hash-consed term representation itself (term
construction is canonical repo-wide) and the congruence-closure theory
solver, which the optimization did not touch.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Optional

from .cnf import CNF, AtomTable, Clause, is_atom
from .dpll import TheoryResult, _theory_literals
from .euf import congruence_closure_consistent
from .solver import _MAX_ASSIGNMENTS, Result, Verdict
from .sorts import Scope, Sort
from .terms import App, Const, Term, evaluate_term, negate

Assignment = Dict[int, bool]

#: The reference evaluator is the recursive walk retained in terms.py.
evaluate_reference = evaluate_term


# ---------------------------------------------------------------------------
# Simplification (seed version: recursive, uncached, original rule set)
# ---------------------------------------------------------------------------

_TRUE = Const(True)
_FALSE = Const(False)


def simplify_reference(term: Term) -> Term:
    """Seed ``simplify``: bottom-up, no memoization, original rules."""
    if isinstance(term, Const) or not isinstance(term, App):
        return term
    args = tuple(simplify_reference(arg) for arg in term.args)
    folded = _try_fold(term.op, args)
    if folded is not None:
        return folded
    rewritten = _rewrite(term.op, args)
    if rewritten is not None:
        return rewritten
    return App(term.op, args)


def _try_fold(op: str, args: tuple[Term, ...]) -> Term | None:
    if not all(isinstance(arg, Const) for arg in args):
        return None
    try:
        value = evaluate_term(App(op, args), {})
    except Exception:  # noqa: BLE001
        return None
    return Const(value)


def _rewrite(op: str, args: tuple[Term, ...]) -> Term | None:
    if op == "and":
        left, right = args
        if left == _TRUE:
            return right
        if right == _TRUE:
            return left
        if left == _FALSE or right == _FALSE:
            return _FALSE
        if left == right:
            return left
        return None
    if op == "or":
        left, right = args
        if left == _FALSE:
            return right
        if right == _FALSE:
            return left
        if left == _TRUE or right == _TRUE:
            return _TRUE
        if left == right:
            return left
        return None
    if op == "implies":
        antecedent, consequent = args
        if antecedent == _FALSE or consequent == _TRUE:
            return _TRUE
        if antecedent == _TRUE:
            return consequent
        if antecedent == consequent:
            return _TRUE
        return None
    if op == "not":
        (operand,) = args
        if operand == _TRUE:
            return _FALSE
        if operand == _FALSE:
            return _TRUE
        if isinstance(operand, App) and operand.op == "not":
            return operand.args[0]
        return None
    if op == "==":
        left, right = args
        if left == right:
            return _TRUE
        return None
    if op == "ite":
        condition, then_term, else_term = args
        if condition == _TRUE:
            return then_term
        if condition == _FALSE:
            return else_term
        if then_term == else_term:
            return then_term
        return None
    if op == "+":
        left, right = args
        if left == Const(0):
            return right
        if right == Const(0):
            return left
        return None
    if op == "-":
        left, right = args
        if right == Const(0):
            return left
        if left == right:
            return Const(0)
        return None
    if op == "*":
        left, right = args
        if left == Const(1):
            return right
        if right == Const(1):
            return left
        if left == Const(0) or right == Const(0):
            return Const(0)
        return None
    return None


# ---------------------------------------------------------------------------
# NNF / Tseitin (seed version: uncached)
# ---------------------------------------------------------------------------


def to_nnf_reference(term: Term, negated: bool = False) -> Term:
    """Seed ``to_nnf``: recursive, no memo."""
    if isinstance(term, Const):
        value = bool(term.value) != negated
        return Const(value)
    if is_atom(term):
        return negate(term) if negated else term
    assert isinstance(term, App)
    if term.op == "not":
        return to_nnf_reference(term.args[0], not negated)
    if term.op == "and":
        parts = tuple(to_nnf_reference(arg, negated) for arg in term.args)
        return App("or" if negated else "and", parts)
    if term.op == "or":
        parts = tuple(to_nnf_reference(arg, negated) for arg in term.args)
        return App("and" if negated else "or", parts)
    if term.op == "implies":
        left, right = term.args
        if negated:  # ¬(a ⇒ b) = a ∧ ¬b
            return App("and", (to_nnf_reference(left, False), to_nnf_reference(right, True)))
        return App("or", (to_nnf_reference(left, True), to_nnf_reference(right, False)))
    if term.op == "ite":
        condition, then_term, else_term = term.args
        positive = App(
            "and",
            (
                App("implies", (condition, then_term)),
                App("implies", (App("not", (condition,)), else_term)),
            ),
        )
        return to_nnf_reference(positive, negated)
    raise TypeError(f"unexpected boolean connective {term.op!r}")


def tseitin_reference(term: Term) -> tuple[CNF, AtomTable, int]:
    """Seed Tseitin conversion (per-call caches only)."""
    table = AtomTable()
    clauses: CNF = []
    cache: Dict[Term, int] = {}

    def convert(current: Term) -> int:
        if current in cache:
            return cache[current]
        if isinstance(current, Const):
            literal = table.fresh()
            clauses.append((literal,) if current.value else (-literal,))
            cache[current] = literal
            return literal
        if is_atom(current):
            literal = table.atom(current)
            cache[current] = literal
            return literal
        assert isinstance(current, App)
        if current.op == "not":
            literal = -convert(current.args[0])
            cache[current] = literal
            return literal
        if current.op in ("and", "or"):
            sub = [convert(arg) for arg in current.args]
            fresh = table.fresh()
            if current.op == "and":
                for literal in sub:
                    clauses.append((-fresh, literal))
                clauses.append(tuple([fresh] + [-literal for literal in sub]))
            else:
                for literal in sub:
                    clauses.append((fresh, -literal))
                clauses.append(tuple([-fresh] + sub))
            cache[current] = fresh
            return fresh
        if current.op == "implies":
            rewritten = App("or", (App("not", (current.args[0],)), current.args[1]))
            literal = convert(rewritten)
            cache[current] = literal
            return literal
        if current.op == "ite":
            condition, then_term, else_term = current.args
            rewritten = App(
                "and",
                (
                    App("or", (App("not", (condition,)), then_term)),
                    App("or", (condition, else_term)),
                ),
            )
            literal = convert(rewritten)
            cache[current] = literal
            return literal
        raise TypeError(f"unexpected boolean connective {current.op!r}")

    nnf = to_nnf_reference(term)
    root = convert(nnf)
    return clauses, table, root


def cnf_of_reference(term: Term) -> tuple[CNF, AtomTable]:
    clauses, table, root = tseitin_reference(term)
    return clauses + [(root,)], table


# ---------------------------------------------------------------------------
# DPLL (seed version: recursive, clause-copying, pure-literal elimination)
# ---------------------------------------------------------------------------


def _propagate(clauses: List[Clause], assignment: Assignment) -> Optional[List[Clause]]:
    """Unit propagation to fixpoint; None on conflict."""
    changed = True
    clauses = list(clauses)
    while changed:
        changed = False
        next_clauses: List[Clause] = []
        for clause in clauses:
            unassigned: List[int] = []
            satisfied = False
            for literal in clause:
                value = assignment.get(abs(literal))
                if value is None:
                    unassigned.append(literal)
                elif (literal > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not unassigned:
                return None  # conflict
            if len(unassigned) == 1:
                literal = unassigned[0]
                assignment[abs(literal)] = literal > 0
                changed = True
            else:
                next_clauses.append(tuple(unassigned))
        clauses = next_clauses
    return clauses


def _pure_literals(clauses: List[Clause], assignment: Assignment) -> None:
    polarity: Dict[int, set] = {}
    for clause in clauses:
        for literal in clause:
            polarity.setdefault(abs(literal), set()).add(literal > 0)
    for variable, signs in polarity.items():
        if variable not in assignment and len(signs) == 1:
            assignment[variable] = signs.pop()


def _choose(clauses: List[Clause], assignment: Assignment) -> Optional[int]:
    counts: Dict[int, int] = {}
    for clause in clauses:
        for literal in clause:
            variable = abs(literal)
            if variable not in assignment:
                counts[variable] = counts.get(variable, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda variable: (counts[variable], -variable))


def dpll_reference(
    clauses: CNF, assignment: Optional[Assignment] = None
) -> Optional[Assignment]:
    """Seed ``dpll``: recursive search copying the clause list per level."""
    assignment = dict(assignment or {})
    simplified = _propagate(list(clauses), assignment)
    if simplified is None:
        return None
    _pure_literals(simplified, assignment)
    simplified = _propagate(simplified, assignment)
    if simplified is None:
        return None
    if not simplified:
        return assignment
    variable = _choose(simplified, assignment)
    if variable is None:
        return assignment
    for value in (True, False):
        trial = dict(assignment)
        trial[variable] = value
        result = dpll_reference(simplified, trial)
        if result is not None:
            return result
    return None


def sat_reference(term: Term) -> Optional[Assignment]:
    clauses, _table = cnf_of_reference(term)
    return dpll_reference(clauses)


def propositionally_valid_reference(term: Term) -> bool:
    return sat_reference(App("not", (term,))) is None


def dpllt_equality_reference(
    term: Term, max_models: int = 10_000
) -> Optional[TheoryResult]:
    """Seed DPLL(T): rebuilds and re-propagates the growing clause list
    from zero for every blocked model."""
    clauses, table = cnf_of_reference(term)
    blocked = 0
    working = list(clauses)
    for _ in range(max_models):
        model = dpll_reference(working)
        if model is None:
            return TheoryResult(False, models_blocked=blocked)
        split = _theory_literals(model, table)
        if split is None:
            return None  # outside the fragment
        equalities, disequalities = split
        if congruence_closure_consistent(equalities, disequalities):
            return TheoryResult(
                True,
                boolean_model=model,
                equalities=tuple(equalities),
                disequalities=tuple(disequalities),
                models_blocked=blocked,
            )
        conflict = tuple(
            -index if value else index
            for index, value in sorted(model.items())
            if table.term_of(index) is not None
        )
        if not conflict:
            return TheoryResult(False, models_blocked=blocked)
        working.append(conflict)
        blocked += 1
    return None  # model budget exhausted: undecided


def euf_valid_reference(term: Term, max_models: int = 10_000) -> Optional[bool]:
    result = dpllt_equality_reference(App("not", (term,)), max_models=max_models)
    if result is None:
        return None
    return not result.satisfiable


# ---------------------------------------------------------------------------
# Validity (seed version: uncached, interpreted enumeration)
# ---------------------------------------------------------------------------


def int_constants_reference(term: Term) -> frozenset[int]:
    """Seed ``int_constants``: uncached recursive walk."""
    if isinstance(term, Const):
        if isinstance(term.value, bool):
            return frozenset()
        if isinstance(term.value, int):
            return frozenset({term.value})
        return frozenset()
    if isinstance(term, App):
        result: frozenset[int] = frozenset()
        for arg in term.args:
            result |= int_constants_reference(arg)
        return result
    return frozenset()


def free_symvars_reference(term: Term) -> frozenset:
    """Seed ``free_symvars``: uncached recursive walk."""
    from .terms import SymVar

    if isinstance(term, Const):
        return frozenset()
    if isinstance(term, SymVar):
        return frozenset({term})
    if isinstance(term, App):
        result: frozenset = frozenset()
        for arg in term.args:
            result |= free_symvars_reference(arg)
        return result
    raise TypeError(f"not a term: {term!r}")


def check_validity_reference(
    formula: Term,
    scope: Scope | None = None,
    sorts: Mapping[str, Sort] | None = None,
    exhaustive: bool = False,
    use_sat: bool = True,
) -> Result:
    """Seed ``check_validity``: no cache, no compilation, recursive DPLL."""
    scope = scope or Scope()
    scope = scope.widen(tuple(int_constants_reference(formula)))
    simplified = simplify_reference(formula)
    if simplified == Const(True):
        return Result(Verdict.PROVED)
    if simplified == Const(False):
        return Result(Verdict.REFUTED, model={})

    if use_sat:
        if propositionally_valid_reference(simplified):
            return Result(Verdict.PROVED)
        euf = euf_valid_reference(simplified)
        if euf is True:
            return Result(Verdict.PROVED)

    variables = sorted(free_symvars_reference(simplified), key=lambda v: v.name)
    if not variables:
        try:
            value = evaluate_term(simplified, {})
        except Exception:  # noqa: BLE001
            return Result(Verdict.UNKNOWN)
        if value:
            return Result(Verdict.PROVED, checked_assignments=1)
        return Result(Verdict.REFUTED, model={}, checked_assignments=1)

    domains = []
    for variable in variables:
        sort = (sorts or {}).get(variable.name, variable.sort)
        domains.append(list(sort.domain(scope)))

    checked = 0
    for combo in itertools.product(*domains):
        assignment = {variable.name: value for variable, value in zip(variables, combo)}
        checked += 1
        if checked > _MAX_ASSIGNMENTS:
            return Result(Verdict.BOUNDED, checked_assignments=checked - 1)
        try:
            value = evaluate_term(simplified, assignment)
        except Exception:  # noqa: BLE001
            return Result(Verdict.UNKNOWN, checked_assignments=checked)
        if not value:
            return Result(Verdict.REFUTED, model=assignment, checked_assignments=checked)
    verdict = Verdict.PROVED if exhaustive else Verdict.BOUNDED
    return Result(verdict, checked_assignments=checked)
