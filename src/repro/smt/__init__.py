"""Term language + bounded solver (the repository's Z3 substitute).

See ``src/repro/smt/README.md`` for the solver architecture: hash-consed
terms (interning), memoized simplification, a CDCL DPLL(T) core with a
theory propagator stack (congruence closure for equality atoms,
an incremental difference-logic constraint graph for integer order
atoms), compiled bounded enumeration, incremental solver sessions, and
a cross-call validity cache with a persistent fingerprint-keyed layer.
The seed's unoptimized algorithms are retained in
:mod:`repro.smt.reference` as a correctness oracle and benchmark
baseline.
"""

from .arith import (
    DifferenceLogicPropagator,
    PropagatorStack,
    is_difference_atom,
    is_order_atom,
    mixed_consistent,
    normalize_order_atom,
)
from .cache import _SEED_CACHE as VALIDITY_CACHE  # historical re-export
from .cache import (
    ValidityCache,
    get_default,
    persistent_key,
    set_default,
    term_fingerprint,
    using_cache,
)
from .cnf import AtomTable, TseitinConverter, cnf_of, is_atom, to_nnf, tseitin
from .compile import compile_term
from .dpll import (
    TheoryResult,
    WatchedSolver,
    dpll,
    dpllt_equality,
    euf_valid,
    propositionally_valid,
    sat,
)
from .intern import clear_all_caches
from .intern import stats as intern_stats
from .euf import (
    CongruenceClosure,
    EqualityPropagator,
    congruence_closure_consistent,
    is_equality_atom,
)
from .session import SessionPool, SolverSession, in_euf_fragment, in_mixed_fragment
from .simplify import is_literally_true, simplify
from .solver import Result, Verdict, check_validity, find_model
from .sorts import (
    BOOL,
    INT,
    BoolSort,
    IntSort,
    MapSort,
    MultisetSort,
    PairSort,
    Scope,
    SeqSort,
    SetSort,
    Sort,
)
from .terms import (
    App,
    Const,
    SymVar,
    Term,
    conj,
    disj,
    eq,
    evaluate_term,
    free_symvars,
    from_expr,
    implies,
    int_constants,
    negate,
    substitute,
)

__all__ = [
    "App",
    "AtomTable",
    "CongruenceClosure",
    "DifferenceLogicPropagator",
    "EqualityPropagator",
    "PropagatorStack",
    "SessionPool",
    "SolverSession",
    "TheoryResult",
    "TseitinConverter",
    "VALIDITY_CACHE",
    "ValidityCache",
    "WatchedSolver",
    "clear_all_caches",
    "compile_term",
    "intern_stats",
    "BOOL",
    "BoolSort",
    "Const",
    "INT",
    "IntSort",
    "MapSort",
    "MultisetSort",
    "PairSort",
    "Result",
    "Scope",
    "SeqSort",
    "SetSort",
    "Sort",
    "SymVar",
    "Term",
    "Verdict",
    "check_validity",
    "cnf_of",
    "congruence_closure_consistent",
    "conj",
    "disj",
    "dpll",
    "dpllt_equality",
    "eq",
    "euf_valid",
    "evaluate_term",
    "find_model",
    "free_symvars",
    "from_expr",
    "implies",
    "in_euf_fragment",
    "in_mixed_fragment",
    "int_constants",
    "is_atom",
    "is_difference_atom",
    "is_equality_atom",
    "is_order_atom",
    "mixed_consistent",
    "normalize_order_atom",
    "get_default",
    "persistent_key",
    "set_default",
    "term_fingerprint",
    "using_cache",
    "is_literally_true",
    "negate",
    "propositionally_valid",
    "sat",
    "simplify",
    "substitute",
    "to_nnf",
    "tseitin",
]
