"""Bottom-up term rewriting / constant folding.

Simplification is the *sound and complete-for-PROVED* part of the solver:
a formula rewritten to the literal ``true`` is valid, full stop.  Formulas
that do not fold to a literal are handed to the bounded model search of
:mod:`repro.smt.solver`.

Because terms are hash-consed (:mod:`repro.smt.intern`), simplification
is memoized per unique node: shared subterms of a formula DAG — and
syntactically identical formulas across separate ``check_validity``
calls — are rewritten exactly once per process.
"""

from __future__ import annotations

from .intern import register_cache
from .terms import App, Const, Term, evaluate_term, free_symvars

_SIMPLIFY_CACHE: dict = register_cache({})

#: Private memo-miss sentinel (cheaper than raising KeyError per cold node).
_MISS = object()


def simplify(term: Term) -> Term:
    """Simplify ``term`` bottom-up.  Pure: returns a new term."""
    if not isinstance(term, App):
        return term
    try:
        result = _SIMPLIFY_CACHE.get(term, _MISS)
    except TypeError:  # unhashable payload: simplify without caching
        return _simplify_app(term)
    if result is _MISS:
        result = _simplify_app(term)
        _SIMPLIFY_CACHE[term] = result
    return result


def _simplify_app(term: App) -> Term:
    args = tuple([simplify(arg) for arg in term.args])
    folded = _try_fold(term.op, args)
    if folded is not None:
        return folded
    rewritten = _rewrite(term.op, args)
    if rewritten is not None:
        return rewritten
    if args == term.args:
        return term  # nothing changed: keep the canonical node
    return App(term.op, args)


def _try_fold(op: str, args: tuple[Term, ...]) -> Term | None:
    """Constant-fold if all arguments are literals."""
    for arg in args:
        if arg.__class__ is not Const:
            return None
    try:
        value = evaluate_term(App(op, args), {})
    except Exception:  # noqa: BLE001 — folding is best-effort
        return None
    return Const(value)


_TRUE = Const(True)
_FALSE = Const(False)


def _rewrite(op: str, args: tuple[Term, ...]) -> Term | None:
    """Algebraic rewrites on partially-symbolic terms."""
    if op == "and":
        left, right = args
        if left == _TRUE:
            return right
        if right == _TRUE:
            return left
        if left == _FALSE or right == _FALSE:
            return _FALSE
        if left == right:
            return left
        return None
    if op == "or":
        left, right = args
        if left == _FALSE:
            return right
        if right == _FALSE:
            return left
        if left == _TRUE or right == _TRUE:
            return _TRUE
        if left == right:
            return left
        return None
    if op == "implies":
        antecedent, consequent = args
        if antecedent == _FALSE or consequent == _TRUE:
            return _TRUE
        if antecedent == _TRUE:
            return consequent
        if antecedent == consequent:
            return _TRUE
        # Chaining: a ⇒ (a ⇒ b) collapses to a ⇒ b.
        if (
            isinstance(consequent, App)
            and consequent.op == "implies"
            and consequent.args[0] == antecedent
        ):
            return consequent
        return None
    if op == "not":
        (operand,) = args
        if operand == _TRUE:
            return _FALSE
        if operand == _FALSE:
            return _TRUE
        if isinstance(operand, App):
            if operand.op == "not":
                return operand.args[0]
            # Keep (dis)equality atoms in positive form: ¬(a = b) ↝ a ≠ b
            # and ¬(a ≠ b) ↝ a = b, so the EUF fragment sees one shape.
            if operand.op == "==":
                return App("!=", operand.args)
            if operand.op == "!=":
                return App("==", operand.args)
        return None
    if op == "==":
        left, right = args
        if left == right:
            return _TRUE
        return None
    if op == "!=":
        left, right = args
        if left == right:
            return _FALSE
        return None
    if op in ("<=", ">="):
        left, right = args
        if left == right:
            return _TRUE
        return None
    if op in ("<", ">"):
        left, right = args
        if left == right:
            return _FALSE
        return None
    if op == "ite":
        condition, then_term, else_term = args
        if condition == _TRUE:
            return then_term
        if condition == _FALSE:
            return else_term
        if then_term == else_term:
            return then_term
        return None
    if op == "+":
        left, right = args
        if left == Const(0):
            return right
        if right == Const(0):
            return left
        return None
    if op == "-":
        left, right = args
        if right == Const(0):
            return left
        if left == right:
            return Const(0)
        return None
    if op == "*":
        left, right = args
        if left == Const(1):
            return right
        if right == Const(1):
            return left
        if left == Const(0) or right == Const(0):
            return Const(0)
        return None
    return None


def is_literally_true(term: Term) -> bool:
    """True iff simplification reduces the term to the literal ``true``."""
    return simplify(term) == _TRUE


def is_closed(term: Term) -> bool:
    return not free_symvars(term)
