"""Congruence closure: the decision procedure for ground equality with
uninterpreted functions (EUF), plus the theory propagator that plugs it
into the CDCL search of :mod:`repro.smt.dpll`.

Given asserted equalities ``s = t`` and disequalities ``s ≠ t`` between
ground terms, the conjunction is satisfiable iff, after closing the
equalities under congruence (``a = b ⟹ f(a) = f(b)``), no disequality
relates two terms of the same class.  This is the Nelson–Oppen-style
core theory Z3 applies to HyperViper's function-heavy verification
conditions.

The implementation is union-find with Downey–Sethi–Tarjan-style use
lists: every class representative keeps the list of parent applications
built over its members, and a union re-signs exactly those parents
against a signature table instead of rescanning every ``App`` per
fixpoint round.  Closure is maintained *eagerly* — ``merge`` leaves the
structure congruence-closed — which is what the incremental theory
propagation of :class:`EqualityPropagator` relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .terms import App, Const, Term

EQUALITY_OPS = frozenset({"==", "!="})


def is_equality_atom(term: Term) -> bool:
    """An atom of the EUF fragment: (dis)equality between ground terms."""
    return isinstance(term, App) and term.op in EQUALITY_OPS and len(term.args) == 2


def subterms(term: Term) -> Iterable[Term]:
    """All subterms, children before parents."""
    if isinstance(term, App):
        for arg in term.args:
            yield from subterms(arg)
    yield term


class CongruenceClosure:
    """Union-find over terms with use-list congruence propagation.

    The structure is kept congruence-closed after every ``merge``: a
    union moves the absorbed root's use list (the ``App`` nodes with an
    argument in that class) onto the surviving root and recomputes just
    those signatures against ``_sig``, queueing any newly congruent pair.
    Registration of an ``App`` likewise consults the signature table, so
    terms first seen *after* their arguments were merged still land in
    the right class.

    >>> from repro.smt.terms import App, SymVar
    >>> from repro.smt.sorts import INT
    >>> a, b = SymVar("a", INT), SymVar("b", INT)
    >>> cc = CongruenceClosure()
    >>> cc.merge(a, b)
    >>> cc.same(App("f", (a,)), App("f", (b,)))
    True
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._uses: Dict[Term, List[App]] = {}
        self._sig: Dict[tuple, App] = {}
        self._pending: List[Tuple[Term, Term]] = []
        self._consts: List[Const] = []

    def _register(self, term: Term) -> None:
        if term in self._parent:
            return
        self._parent[term] = term
        self._uses[term] = []
        if isinstance(term, Const):
            self._consts.append(term)
            return
        if isinstance(term, App):
            for arg in term.args:
                self._register(arg)
            roots = tuple(self._root(arg) for arg in term.args)
            for root in roots:
                self._uses[root].append(term)
            signature = (term.op, roots)
            other = self._sig.get(signature)
            if other is None:
                self._sig[signature] = term
            else:
                self._pending.append((term, other))

    def _root(self, term: Term) -> Term:
        """Representative of an already-registered term (with path
        compression); does not drain pending congruences."""
        parent = self._parent
        root = term
        while parent[root] != root:
            root = parent[root]
        while parent[term] != root:
            parent[term], term = root, parent[term]
        return root

    def find(self, term: Term) -> Term:
        self._register(term)
        self._propagate()
        return self._root(term)

    def same(self, left: Term, right: Term) -> bool:
        self._register(left)
        self._register(right)
        self._propagate()
        return self._root(left) == self._root(right)

    def merge(self, left: Term, right: Term) -> None:
        self._register(left)
        self._register(right)
        self._pending.append((left, right))
        self._propagate()

    def constants(self) -> Sequence[Const]:
        """The registered constant terms (used for distinct-value checks)."""
        return self._consts

    def _union(self, left: Term, right: Term) -> None:
        root_left, root_right = self._root(left), self._root(right)
        if root_left == root_right:
            return
        uses = self._uses
        # Union by use-list weight: re-sign the smaller parent set.
        if len(uses[root_left]) > len(uses[root_right]):
            root_left, root_right = root_right, root_left
        self._parent[root_left] = root_right
        moved = uses[root_left]
        uses[root_left] = []
        sig = self._sig
        for parent_app in moved:
            signature = (
                parent_app.op,
                tuple(self._root(arg) for arg in parent_app.args),
            )
            other = sig.get(signature)
            if other is None:
                sig[signature] = parent_app
            elif self._root(other) != self._root(parent_app):
                self._pending.append((parent_app, other))
        uses[root_right].extend(moved)

    def _propagate(self) -> None:
        pending = self._pending
        while pending:
            left, right = pending.pop()
            self._union(left, right)

    def _close(self) -> None:
        """Drain pending congruences.  Kept for API compatibility — the
        closure is maintained eagerly through the use lists, so this no
        longer rescans the term universe."""
        self._propagate()

    def classes(self) -> Dict[Term, frozenset]:
        """The current partition, keyed by representative."""
        self._propagate()
        groups: Dict[Term, set] = {}
        for term in self._parent:
            groups.setdefault(self._root(term), set()).add(term)
        return {root: frozenset(members) for root, members in groups.items()}


def congruence_closure_consistent(
    equalities: Sequence[Tuple[Term, Term]],
    disequalities: Sequence[Tuple[Term, Term]],
) -> bool:
    """Satisfiability of ``⋀ eqs ∧ ⋀ neqs`` over uninterpreted terms.

    Distinct constants are distinct values, so asserted equalities that
    merge two different :class:`Const` terms are inconsistent too.
    """
    cc = CongruenceClosure()
    for left, right in equalities:
        cc.merge(left, right)
    # Different constants in one class: inconsistent.
    labels: Dict[Term, Const] = {}
    for constant in cc.constants():
        root = cc.find(constant)
        seen = labels.get(root)
        if seen is not None and seen.value != constant.value:
            return False
        labels.setdefault(root, constant)
    for left, right in disequalities:
        if cc.same(left, right):
            return False
        # x ≠ x is inconsistent even without merges.
        if left == right:
            return False
    return True


class EqualityPropagator:
    """DPLL(T) theory propagator for the ground equality fragment.

    Mirrors the boolean trail of a :class:`~repro.smt.dpll.WatchedSolver`
    into an incrementally extended :class:`CongruenceClosure`.  At every
    boolean propagation fixpoint the solver calls :meth:`check`, which

    * reports a **theory conflict** as soon as an asserted disequality
      relates two merged terms or a class holds two distinct constants
      (no need to wait for a full boolean model), and
    * **propagates entailed atoms**: an unassigned equality atom whose
      sides share a class is enqueued true; one whose sides are related
      by an asserted disequality (up to congruence) or sit in classes
      labelled with distinct constants is enqueued false.

    Explanations over-approximate: a conflict/implication is blamed on
    the full set of asserted equality literals (plus the one disequality
    involved).  That keeps explanation generation O(1) per premise at
    the cost of somewhat wider learned clauses — ample for the VC-sized
    instances this repository discharges.

    Assertions are incremental in the forward direction (each new
    equality is one ``merge``); a backjump marks the closure dirty and
    the next use rebuilds it from the surviving prefix of the trail.

    The ``reset`` / ``assert_literal`` / ``backjump`` / ``check`` /
    ``atom_vars`` / ``rescan`` protocol is shared with
    :class:`repro.smt.arith.DifferenceLogicPropagator`; the two compose
    in a :class:`repro.smt.arith.PropagatorStack` over one trail for
    the mixed equality/order fragment (see ``smt/README.md``,
    "The theory propagator stack").
    """

    def __init__(self, table) -> None:
        #: var -> (left, right, positive-literal-means-equality)
        self._atoms: Dict[int, Tuple[Term, Term, bool]] = {}
        self._table = table
        #: the atoms currently mirrored and propagated — an alias of
        #: ``_atoms`` until :meth:`focus` narrows it, so the unfocused
        #: (fresh-solver) hot path pays nothing.
        self._live: Dict[int, Tuple[Term, Term, bool]] = self._atoms
        self.rescan()
        self._stack: List[int] = []  # mirrored trail (0 for ignored literals)
        self._eq_lits: List[int] = []
        self._diseqs: List[Tuple[int, Term, Term]] = []
        self._cc = CongruenceClosure()
        self._dirty = False
        self.propagations = 0
        self.conflicts = 0

    def atom_vars(self) -> Iterable[int]:
        """The boolean variables this propagator may assert or consume."""
        return self._atoms.keys()

    def rescan(self) -> None:
        """Pick up atoms added to the table since construction.

        A :class:`~repro.smt.session.SolverSession` keeps one propagator
        over a *growing* shared atom table: each new VC may introduce new
        equality atoms, registered here before the next ``solve``.  Known
        atoms keep their entries (the dict is only extended), so the
        mirrored trail stays consistent across rescans.
        """
        atoms = self._atoms
        for index, term in self._table.atoms().items():
            if index not in atoms and is_equality_atom(term):
                left, right = term.args
                atoms[index] = (left, right, term.op == "==")

    def focus(self, variables: "Iterable[int] | None") -> None:
        """Restrict mirroring and propagation to these atom vars (None =
        every known atom).  A shared session focuses each activated
        query on its own atoms: stale atoms from retired queries are
        treated exactly like a fresh solver that never saw them."""
        if variables is None:
            self._live = self._atoms
        else:
            atoms = self._atoms
            self._live = {
                var: atoms[var] for var in variables if var in atoms
            }

    def reset(self) -> None:
        """Forget the mirrored trail (start of a ``solve`` call)."""
        self._stack.clear()
        self._dirty = True

    def assert_literal(self, literal: int) -> None:
        """Mirror one trail literal (ignored unless it is a focused
        equality atom)."""
        info = self._live.get(abs(literal))
        if info is None:
            self._stack.append(0)
            return
        self._stack.append(literal)
        if not self._dirty:
            self._apply(literal, info)

    def backjump(self, keep: int) -> None:
        """Truncate the mirrored trail to its first ``keep`` entries."""
        del self._stack[keep:]
        self._dirty = True

    def _apply(self, literal: int, info: Tuple[Term, Term, bool]) -> None:
        left, right, positive_is_eq = info
        if (literal > 0) == positive_is_eq:
            self._cc.merge(left, right)
            self._eq_lits.append(literal)
        else:
            self._diseqs.append((literal, left, right))

    def _rebuild(self) -> None:
        self._cc = CongruenceClosure()
        self._eq_lits = []
        self._diseqs = []
        atoms = self._atoms
        for literal in self._stack:
            if literal:
                self._apply(literal, atoms[abs(literal)])
        self._dirty = False

    def check(self, assign: List[int]):
        """Theory-check the mirrored trail.

        ``assign`` is the solver's *literal-indexed* value array
        (``assign[2 * var]`` is 0 unassigned, ±1 for the positive
        literal's truth).  Returns ``("conflict", clause)`` with every
        clause literal currently false, or ``("ok", propagations)``
        where each propagation is ``(literal, premises)`` — premises are
        the true literals entailing it.
        """
        if self._dirty:
            self._rebuild()
        cc = self._cc
        premises = self._eq_lits
        # 1. Asserted disequality inside one class → conflict; otherwise
        #    remember the root pair for entailed-false propagation.
        diseq_by_roots: Dict[Tuple[Term, Term], int] = {}
        for literal, left, right in self._diseqs:
            root_left, root_right = cc.find(left), cc.find(right)
            if root_left == root_right:
                self.conflicts += 1
                clause = [-literal]
                clause.extend(-e for e in premises)
                return "conflict", clause
            diseq_by_roots[(root_left, root_right)] = literal
            diseq_by_roots[(root_right, root_left)] = literal
        # 2. Two distinct constants in one class → conflict; otherwise
        #    label roots for entailed-false propagation.
        labels: Dict[Term, Const] = {}
        for constant in cc.constants():
            root = cc.find(constant)
            seen = labels.get(root)
            if seen is not None and seen.value != constant.value:
                self.conflicts += 1
                return "conflict", [-e for e in premises]
            labels.setdefault(root, constant)
        # 3. Entailed atoms among the unassigned ones (restricted to the
        #    focused query's atoms when a session set a focus).
        implied: List[Tuple[int, List[int]]] = []
        n = len(assign)
        for var, (left, right, positive_is_eq) in self._live.items():
            encoded = var << 1
            if encoded < n and assign[encoded] != 0:
                continue
            root_left, root_right = cc.find(left), cc.find(right)
            if root_left == root_right:
                literal = var if positive_is_eq else -var
                implied.append((literal, list(premises)))
                continue
            diseq_literal = diseq_by_roots.get((root_left, root_right))
            if diseq_literal is not None:
                literal = -var if positive_is_eq else var
                implied.append((literal, [diseq_literal] + premises))
                continue
            label_left = labels.get(root_left)
            label_right = labels.get(root_right)
            if (
                label_left is not None
                and label_right is not None
                and label_left.value != label_right.value
            ):
                literal = -var if positive_is_eq else var
                implied.append((literal, list(premises)))
        self.propagations += len(implied)
        return "ok", implied
