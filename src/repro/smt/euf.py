"""Congruence closure: the decision procedure for ground equality with
uninterpreted functions (EUF).

Given asserted equalities ``s = t`` and disequalities ``s ≠ t`` between
ground terms, the conjunction is satisfiable iff, after closing the
equalities under congruence (``a = b ⟹ f(a) = f(b)``), no disequality
relates two terms of the same class.  This is the Nelson–Oppen-style
core theory Z3 applies to HyperViper's function-heavy verification
conditions; here it backs the lazy DPLL(T) loop of
:mod:`repro.smt.dpll`.

The implementation is the classic union-find with congruence propagation
(Downey–Sethi–Tarjan style, without the sub-quadratic refinements — our
VCs are small).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from .terms import App, Const, SymVar, Term

EQUALITY_OPS = frozenset({"==", "!="})


def is_equality_atom(term: Term) -> bool:
    """An atom of the EUF fragment: (dis)equality between ground terms."""
    return isinstance(term, App) and term.op in EQUALITY_OPS and len(term.args) == 2


def subterms(term: Term) -> Iterable[Term]:
    """All subterms, children before parents."""
    if isinstance(term, App):
        for arg in term.args:
            yield from subterms(arg)
    yield term


class CongruenceClosure:
    """Union-find over terms with congruence propagation.

    >>> from repro.smt.terms import App, SymVar
    >>> from repro.smt.sorts import INT
    >>> a, b = SymVar("a", INT), SymVar("b", INT)
    >>> cc = CongruenceClosure()
    >>> cc.merge(a, b)
    >>> cc.same(App("f", (a,)), App("f", (b,)))
    True
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._uses: Dict[Term, List[App]] = {}

    def _register(self, term: Term) -> None:
        if term in self._parent:
            return
        self._parent[term] = term
        self._uses[term] = []
        if isinstance(term, App):
            for arg in term.args:
                self._register(arg)
                self._uses[self.find(arg)].append(term)

    def find(self, term: Term) -> Term:
        self._register(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[term] != root:  # path compression
            self._parent[term], term = root, self._parent[term]
        return root

    def same(self, left: Term, right: Term) -> bool:
        self._register(left)
        self._register(right)
        self._close()
        return self.find(left) == self.find(right)

    def merge(self, left: Term, right: Term) -> None:
        self._register(left)
        self._register(right)
        self._union(left, right)
        self._close()

    def _union(self, left: Term, right: Term) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return
        self._parent[root_left] = root_right
        self._uses.setdefault(root_right, []).extend(self._uses.get(root_left, []))

    def _close(self) -> None:
        """Propagate congruence to fixpoint."""
        changed = True
        while changed:
            changed = False
            terms = [term for term in self._parent if isinstance(term, App)]
            by_signature: Dict[tuple, Term] = {}
            for term in terms:
                signature = (term.op, tuple(self.find(arg) for arg in term.args))
                other = by_signature.get(signature)
                if other is None:
                    by_signature[signature] = term
                elif self.find(term) != self.find(other):
                    self._union(term, other)
                    changed = True

    def classes(self) -> Dict[Term, frozenset]:
        """The current partition, keyed by representative."""
        self._close()
        groups: Dict[Term, set] = {}
        for term in self._parent:
            groups.setdefault(self.find(term), set()).add(term)
        return {root: frozenset(members) for root, members in groups.items()}


def congruence_closure_consistent(
    equalities: Sequence[Tuple[Term, Term]],
    disequalities: Sequence[Tuple[Term, Term]],
) -> bool:
    """Satisfiability of ``⋀ eqs ∧ ⋀ neqs`` over uninterpreted terms.

    Distinct constants are distinct values, so asserted equalities that
    merge two different :class:`Const` terms are inconsistent too.
    """
    cc = CongruenceClosure()
    for left, right in equalities:
        cc.merge(left, right)
    # Different constants in one class: inconsistent.
    for members in cc.classes().values():
        constants = {term.value for term in members if isinstance(term, Const)}
        if len(constants) > 1:
            return False
    for left, right in disequalities:
        if cc.same(left, right):
            return False
        # x ≠ x is inconsistent even without merges.
        if left == right:
            return False
    return True
