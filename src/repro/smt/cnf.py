"""Boolean skeletons: NNF and Tseitin CNF conversion.

The bounded solver (:mod:`repro.smt.solver`) enumerates assignments; for
formulas with rich *boolean* structure but few distinct theory atoms this
is wasteful.  This module extracts the boolean skeleton of a term —
treating every non-boolean-connective subterm (a comparison, a boolean
variable, an uninterpreted application) as an opaque *atom* — and
converts it to CNF by a polarity-aware (Plaisted–Greenbaum) Tseitin
transformation, which is equisatisfiable, only linearly larger than the
input, and emits definition clauses only in the polarity each
subformula is observed from the root.

A CNF is a list of clauses; a clause is a tuple of non-zero integers
(DIMACS convention: ``n`` is atom ``n``, ``-n`` its negation).  The
:class:`AtomTable` maps atom indices back to the original terms so the
DPLL(T) loop (:mod:`repro.smt.dpll`) can classify each atom into a
theory fragment — ``==``/``!=`` atoms for congruence closure
(:func:`repro.smt.euf.is_equality_atom`), integer order atoms for the
difference-logic propagator
(:func:`repro.smt.arith.is_difference_atom`) — and hand the asserted
literals to the matching theory solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .intern import register_cache
from .terms import App, Const, SymVar, Term, negate

BOOL_CONNECTIVES = frozenset({"and", "or", "not", "implies", "ite"})

Clause = Tuple[int, ...]
CNF = List[Clause]


@dataclass
class AtomTable:
    """Bijection between theory atoms (terms) and positive integers.

    Indices 1..n are *atoms* from the input formula; indices above
    ``max_input_atom`` are Tseitin definition variables with no term.
    """

    _by_term: Dict[Term, int] = field(default_factory=dict)
    _by_index: Dict[int, Term] = field(default_factory=dict)
    _next: int = 1

    def atom(self, term: Term) -> int:
        index = self._by_term.get(term)
        if index is None:
            index = self._next
            self._next += 1
            self._by_term[term] = index
            self._by_index[index] = term
        return index

    def fresh(self) -> int:
        index = self._next
        self._next += 1
        return index

    def term_of(self, index: int) -> Term | None:
        return self._by_index.get(abs(index))

    def atoms(self) -> Dict[int, Term]:
        return dict(self._by_index)

    @property
    def count(self) -> int:
        return self._next - 1


def is_atom(term: Term) -> bool:
    """A boolean-sorted term with no boolean structure of its own."""
    if isinstance(term, Const):
        return False  # constants are handled by the converter directly
    if isinstance(term, SymVar):
        return True
    if isinstance(term, App):
        return term.op not in BOOL_CONNECTIVES
    raise TypeError(f"not a term: {term!r}")


_NNF_CACHE: Dict[Tuple[Term, bool], Term] = register_cache({})


def to_nnf(term: Term, negated: bool = False) -> Term:
    """Negation normal form: negations pushed onto atoms, implications
    unfolded.  ``ite`` at the boolean level unfolds to two implications.

    Memoized per (interned node, polarity): shared subformulas convert
    once per process."""
    try:
        return _NNF_CACHE[(term, negated)]
    except KeyError:
        pass
    except TypeError:  # unhashable payload
        return _to_nnf(term, negated)
    result = _to_nnf(term, negated)
    _NNF_CACHE[(term, negated)] = result
    return result


def _to_nnf(term: Term, negated: bool) -> Term:
    if isinstance(term, Const):
        value = bool(term.value) != negated
        return Const(value)
    if is_atom(term):
        return negate(term) if negated else term
    assert isinstance(term, App)
    if term.op == "not":
        return to_nnf(term.args[0], not negated)
    if term.op == "and":
        parts = tuple(to_nnf(arg, negated) for arg in term.args)
        return App("or" if negated else "and", parts)
    if term.op == "or":
        parts = tuple(to_nnf(arg, negated) for arg in term.args)
        return App("and" if negated else "or", parts)
    if term.op == "implies":
        left, right = term.args
        if negated:  # ¬(a ⇒ b) = a ∧ ¬b
            return App("and", (to_nnf(left, False), to_nnf(right, True)))
        return App("or", (to_nnf(left, True), to_nnf(right, False)))
    if term.op == "ite":
        condition, then_term, else_term = term.args
        positive = App(
            "and",
            (
                App("implies", (condition, then_term)),
                App("implies", (App("not", (condition,)), else_term)),
            ),
        )
        return to_nnf(positive, negated)
    raise TypeError(f"unexpected boolean connective {term.op!r}")


class TseitinConverter:
    """Polarity-aware (Plaisted–Greenbaum) Tseitin state that persists
    across conversions.

    A converter owns one :class:`AtomTable` plus the definition-literal
    and emitted-direction memos, so converting a *sequence* of formulas
    (the VCs of a proof outline, via :class:`repro.smt.session.
    SolverSession`) shares everything structural: an atom keeps one
    variable across all formulas that mention it, and the definition
    clauses of a subformula are emitted exactly once per polarity over
    the converter's whole lifetime.  Definition clauses are implications
    about *fresh* variables, so they are globally sound and can live
    unguarded in a shared clause database — only the per-formula root
    assertion needs an activation guard.

    :meth:`convert` returns the clauses newly emitted by this call (not
    the accumulated database) together with the root literal;
    :meth:`convert_into` streams them straight into a clause sink (e.g.
    ``WatchedSolver.add_clause``) without materialising the list.  The
    ``definition_hits`` counter records how many definition directions
    were served from the memo instead of re-emitted.
    """

    __slots__ = ("table", "_literal_cache", "_emitted", "definition_hits")

    def __init__(self, table: AtomTable | None = None) -> None:
        self.table = table if table is not None else AtomTable()
        self._literal_cache: Dict[Term, int] = {}  # term -> defining literal
        self._emitted: set = set()  # (term, polarity) definition directions done
        self.definition_hits = 0

    def convert(self, term: Term) -> tuple[CNF, int]:
        """Convert one boolean term; returns ``(new_clauses, root)``.

        ``accumulated_clauses + [(root,)]`` is equisatisfiable with the
        conjunction of every converted term's assertion, and every model
        restricted to the theory atoms satisfies the asserted terms.
        Definition clauses are emitted only in the direction each
        subformula is actually observed from its (positive) root —
        roughly half the clauses of the classical both-direction Tseitin
        encoding — and negation/implication polarities are tracked
        directly, so no separate NNF pass is needed.
        """
        clauses: CNF = []
        root = self.convert_into(term, clauses.append)
        return clauses, root

    def convert_into(self, term: Term, emit) -> int:
        """Convert one boolean term, streaming each new definition clause
        (a tuple of signed literals) to ``emit``; returns the root
        literal.  The caller still has to assert the root — sessions
        guard it with an activation literal, one-shot callers add the
        unit ``(root,)``.  Feeding ``emit=solver.add_clause`` skips the
        intermediate clause list entirely: clauses land in the solver's
        arena as they are produced.
        """
        table = self.table
        literal_cache = self._literal_cache
        emitted = self._emitted

        def convert(current: Term, polarity: int) -> int:
            if isinstance(current, App):
                op = current.op
                if op not in BOOL_CONNECTIVES:
                    return table.atom(current)  # an opaque theory atom
                if op == "not":
                    return -convert(current.args[0], -polarity)
                if op == "ite":
                    condition, then_term, else_term = current.args
                    rewritten = App(
                        "and",
                        (
                            App("or", (App("not", (condition,)), then_term)),
                            App("or", (condition, else_term)),
                        ),
                    )
                    return convert(rewritten, polarity)
                fresh = literal_cache.get(current)
                if fresh is None:
                    fresh = table.fresh()
                    literal_cache[current] = fresh
                # A shared subformula seen under both polarities gets both
                # definition directions, each emitted once.
                if polarity > 0:
                    if (current, 1) in emitted:
                        self.definition_hits += 1
                        return fresh
                    emitted.add((current, 1))
                    if op == "and":
                        # fresh ⇒ (a ∧ b): (¬fresh ∨ a), (¬fresh ∨ b)
                        for arg in current.args:
                            emit((-fresh, convert(arg, 1)))
                    elif op == "or":
                        # fresh ⇒ (a ∨ b): (¬fresh ∨ a ∨ b)
                        emit(
                            tuple([-fresh] + [convert(arg, 1) for arg in current.args])
                        )
                    else:  # implies, as ¬a ∨ b: (¬fresh ∨ ¬a ∨ b)
                        left, right = current.args
                        emit((-fresh, -convert(left, -1), convert(right, 1)))
                else:
                    if (current, -1) in emitted:
                        self.definition_hits += 1
                        return fresh
                    emitted.add((current, -1))
                    if op == "and":
                        # ¬fresh ⇒ ¬(a ∧ b): (fresh ∨ ¬a ∨ ¬b)
                        emit(
                            tuple([fresh] + [-convert(arg, -1) for arg in current.args])
                        )
                    elif op == "or":
                        # ¬fresh ⇒ ¬(a ∨ b): (fresh ∨ ¬a), (fresh ∨ ¬b)
                        for arg in current.args:
                            emit((fresh, -convert(arg, -1)))
                    else:  # ¬fresh ⇒ a ∧ ¬b
                        left, right = current.args
                        emit((fresh, convert(left, 1)))
                        emit((fresh, -convert(right, -1)))
                return fresh
            if isinstance(current, Const):
                # Encode constants as a fresh always-true/false literal.
                literal = literal_cache.get(current)
                if literal is None:
                    literal = table.fresh()
                    emit((literal,) if current.value else (-literal,))
                    literal_cache[current] = literal
                return literal
            if isinstance(current, SymVar):
                return table.atom(current)
            raise TypeError(f"not a term: {current!r}")

        return convert(term, 1)


def tseitin(term: Term) -> tuple[CNF, AtomTable, int]:
    """Polarity-aware (Plaisted–Greenbaum) CNF of a boolean term.

    One-shot form of :class:`TseitinConverter`: returns ``(clauses,
    atoms, root)`` where ``root`` is a literal such that ``clauses +
    [(root,)]`` is equisatisfiable with the input, and every model of it
    restricted to the theory atoms satisfies the input.
    """
    converter = TseitinConverter()
    clauses, root = converter.convert(term)
    return clauses, converter.table, root


def cnf_of(term: Term) -> tuple[CNF, AtomTable]:
    """CNF whose satisfiability equals the term's (root literal asserted)."""
    clauses, table, root = tseitin(term)
    return clauses + [(root,)], table
