"""Term-to-closure compilation for the bounded enumerator.

:func:`repro.smt.solver.check_validity` may evaluate one formula under
hundreds of thousands of assignments.  The reference evaluator
(:func:`repro.smt.terms.evaluate_term`) re-dispatches on the node type
and re-resolves the operation table at *every* node of *every*
evaluation.  This module compiles a term once into a tree of closures —
each node becomes a function ``env -> value`` — so the per-assignment
cost is a plain call tree with all dispatch decisions already taken.

The compiled form preserves the evaluator's semantics exactly:

* ``and``/``or``/``implies``/``ite`` stay *lazy*, so guarded sub-terms
  (division, indexing) are never evaluated when their guard short-circuits;
* an unassigned variable raises ``KeyError`` as before;
* an operation missing from :data:`~repro.smt.terms.OPERATIONS` raises
  :class:`~repro.smt.terms.UnknownOperation` *at call time* (operations
  may be registered after compilation, e.g. by
  :mod:`repro.verifier.vcgen`, and must then be picked up).

Compiled closures are memoized per interned term, so shared subterms of
a formula DAG compile — and close over — a single function object.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .intern import memoize_term_fn
from .terms import OPERATIONS, App, Const, SymVar, Term, UnknownOperation

Evaluator = Callable[[Mapping[str, Any]], Any]


def _build(term: Term) -> Evaluator:
    if isinstance(term, Const):
        value = term.value

        def const_fn(env: Mapping[str, Any], _value=value) -> Any:
            return _value

        return const_fn
    if isinstance(term, SymVar):
        name = term.name

        def var_fn(env: Mapping[str, Any], _name=name) -> Any:
            try:
                return env[_name]
            except KeyError:
                raise KeyError(f"unassigned symbolic variable {_name!r}") from None

        return var_fn
    if isinstance(term, App):
        return _build_app(term)
    raise TypeError(f"not a term: {term!r}")


def _build_app(term: App) -> Evaluator:
    op = term.op
    subs = tuple(compile_term(arg) for arg in term.args)
    # Lazy connectives mirror evaluate_term's short-circuit semantics.
    if op == "and":
        if len(subs) == 2:
            first, second = subs

            def and2_fn(env: Mapping[str, Any]) -> bool:
                return bool(first(env)) and bool(second(env))

            return and2_fn

        def and_fn(env: Mapping[str, Any]) -> bool:
            return all(bool(sub(env)) for sub in subs)

        return and_fn
    if op == "or":
        if len(subs) == 2:
            first, second = subs

            def or2_fn(env: Mapping[str, Any]) -> bool:
                return bool(first(env)) or bool(second(env))

            return or2_fn

        def or_fn(env: Mapping[str, Any]) -> bool:
            return any(bool(sub(env)) for sub in subs)

        return or_fn
    if op == "implies":
        antecedent, consequent = subs

        def implies_fn(env: Mapping[str, Any]) -> bool:
            if not antecedent(env):
                return True
            return bool(consequent(env))

        return implies_fn
    if op == "ite":
        condition, then_fn, else_fn = subs

        def ite_fn(env: Mapping[str, Any]) -> Any:
            if condition(env):
                return then_fn(env)
            return else_fn(env)

        return ite_fn

    operation = OPERATIONS.get(op)
    if operation is None:
        # Late binding: the op may be registered after compilation (vcgen
        # does this); resolve per call exactly like the reference walk.
        def late_fn(env: Mapping[str, Any], _op=op, _subs=subs) -> Any:
            resolved = OPERATIONS.get(_op)
            if resolved is None:
                raise UnknownOperation(_op)
            return resolved(*(sub(env) for sub in _subs))

        return late_fn

    if len(subs) == 1:
        (only,) = subs

        def unary_fn(env: Mapping[str, Any], _operation=operation) -> Any:
            return _operation(only(env))

        return unary_fn
    if len(subs) == 2:
        first, second = subs

        def binary_fn(env: Mapping[str, Any], _operation=operation) -> Any:
            return _operation(first(env), second(env))

        return binary_fn

    def nary_fn(env: Mapping[str, Any], _operation=operation) -> Any:
        return _operation(*(sub(env) for sub in subs))

    return nary_fn


#: Compile ``term`` to a closure ``assignment -> value``, memoized per
#: interned term (unhashable payloads bypass the cache).
compile_term: Callable[[Term], Evaluator] = memoize_term_fn(_build)
