"""Sorts for the term language, with finite small-scope domains.

The in-house solver (our substitute for Z3, see
``docs/ARCHITECTURE.md``) decides
verification conditions by *small-scope enumeration*: every sort can
enumerate a finite domain of representative values.  Integer domains are
windows around zero extended with the constants occurring in the formula;
collection sorts enumerate all collections up to a size bound over their
element domain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Tuple

from ..heap.multiset import Multiset
from ..lang.values import PMap


class Sort:
    """Base class of all sorts."""

    def domain(self, scope: "Scope") -> Iterator[Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class Scope:
    """Bounds for small-scope enumeration.

    ``int_values`` is the set of integers to try; ``max_size`` bounds the
    size of enumerated collections.
    """

    int_values: Tuple[int, ...] = (-2, -1, 0, 1, 2, 3)
    max_size: int = 2

    def widen(self, extra_ints: Tuple[int, ...]) -> "Scope":
        merged = tuple(sorted(set(self.int_values) | set(extra_ints)))
        return Scope(merged, self.max_size)


@dataclass(frozen=True)
class IntSort(Sort):
    def domain(self, scope: Scope) -> Iterator[int]:
        return iter(scope.int_values)

    def __str__(self) -> str:
        return "Int"


@dataclass(frozen=True)
class BoolSort(Sort):
    def domain(self, scope: Scope) -> Iterator[bool]:
        return iter((False, True))

    def __str__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class PairSort(Sort):
    first: Sort
    second: Sort

    def domain(self, scope: Scope) -> Iterator[tuple]:
        return itertools.product(self.first.domain(scope), self.second.domain(scope))

    def __str__(self) -> str:
        return f"Pair[{self.first}, {self.second}]"


@dataclass(frozen=True)
class SeqSort(Sort):
    element: Sort

    def domain(self, scope: Scope) -> Iterator[tuple]:
        for size in range(scope.max_size + 1):
            yield from itertools.product(self.element.domain(scope), repeat=size)

    def __str__(self) -> str:
        return f"Seq[{self.element}]"


@dataclass(frozen=True)
class SetSort(Sort):
    element: Sort

    def domain(self, scope: Scope) -> Iterator[frozenset]:
        elements = list(self.element.domain(scope))
        for size in range(min(scope.max_size, len(elements)) + 1):
            for combo in itertools.combinations(elements, size):
                yield frozenset(combo)

    def __str__(self) -> str:
        return f"Set[{self.element}]"


@dataclass(frozen=True)
class MultisetSort(Sort):
    element: Sort

    def domain(self, scope: Scope) -> Iterator[Multiset]:
        elements = list(self.element.domain(scope))
        for size in range(scope.max_size + 1):
            for combo in itertools.combinations_with_replacement(elements, size):
                yield Multiset(combo)

    def __str__(self) -> str:
        return f"MultiSet[{self.element}]"


@dataclass(frozen=True)
class MapSort(Sort):
    key: Sort
    value: Sort

    def domain(self, scope: Scope) -> Iterator[PMap]:
        keys = list(self.key.domain(scope))
        values = list(self.value.domain(scope))
        for size in range(min(scope.max_size, len(keys)) + 1):
            for key_combo in itertools.combinations(keys, size):
                for value_combo in itertools.product(values, repeat=size):
                    yield PMap(dict(zip(key_combo, value_combo)))

    def __str__(self) -> str:
        return f"Map[{self.key}, {self.value}]"


INT = IntSort()
BOOL = BoolSort()
