"""A many-sorted first-order term language.

Terms are the currency of the verifier's verification conditions.  The
interpreted operations are the object language's operators plus the pure
functions of :mod:`repro.lang.values`, so any program expression can be
lifted to a term (:func:`from_expr`) and any term evaluated under a
variable assignment (:func:`evaluate_term`).

Terms are immutable and *hash-consed* (:mod:`repro.smt.intern`):
constructing a term returns the canonical instance for its structure, so
``==`` is an identity check in the common case, ``hash`` is O(1) via a
hash cached at construction, and the per-term analyses below
(:func:`free_symvars`, :func:`int_constants`) are memoized per unique
node.  The cached hashes are computed with exactly the recipe the
previous ``@dataclass(frozen=True)`` representation used, so dictionary
and set behaviour is unchanged — including the longstanding conflation
of ``Const(True)``/``Const(1)`` under ``==`` that Python's bool/int
equality implies.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Tuple

from ..lang import ast as lang_ast
from ..lang.values import PURE_FUNCTIONS
from .intern import APPS, CONSTS, SYMVARS, memoize_term_fn
from .sorts import Sort


class Term:
    """Base class of all terms (immutable, hash-consed)."""

    __slots__ = ("_hash",)

    def __hash__(self) -> int:
        h = self._hash
        if h is None:  # unhashable payload — mirror the frozen-dataclass error
            raise TypeError(f"unhashable term: {self!r}")
        return h

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"terms are immutable (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"terms are immutable (cannot delete {name!r})")

    # Interned terms are canonical: copying returns the term itself.
    def __copy__(self) -> "Term":
        return self

    def __deepcopy__(self, memo: dict) -> "Term":
        return self


_set = object.__setattr__


class Const(Term):
    value: Any

    __slots__ = ("value",)

    def __new__(cls, value: Any) -> "Const":
        try:
            # Key on the value's class too, so True/1 keep distinct
            # canonical nodes (their == / hash still conflate, as before).
            key = (value.__class__, value)
            found = CONSTS.get(key)
        except TypeError:  # unhashable value: uninterned, lazy-unhashable
            return cls._build(value, None)
        if found is not None:
            return found
        return CONSTS.put(key, cls._build(value, hash((value,))))

    @classmethod
    def _build(cls, value: Any, cached_hash: "int | None") -> "Const":
        self = object.__new__(cls)
        _set(self, "value", value)
        _set(self, "_hash", cached_hash)
        return self

    def __eq__(self, other: Any) -> Any:
        if self is other:
            return True
        if other.__class__ is Const:
            return self.value == other.value
        return NotImplemented

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (Const, (self.value,))

    def __repr__(self) -> str:
        return f"Const(value={self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class SymVar(Term):
    name: str
    sort: Sort

    __slots__ = ("name", "sort")

    def __new__(cls, name: str, sort: Sort) -> "SymVar":
        try:
            key = (name, sort)
            found = SYMVARS.get(key)
        except TypeError:
            return cls._build(name, sort, None)
        if found is not None:
            return found
        return SYMVARS.put(key, cls._build(name, sort, hash(key)))

    @classmethod
    def _build(cls, name: str, sort: Sort, cached_hash: "int | None") -> "SymVar":
        self = object.__new__(cls)
        _set(self, "name", name)
        _set(self, "sort", sort)
        _set(self, "_hash", cached_hash)
        return self

    def __eq__(self, other: Any) -> Any:
        if self is other:
            return True
        if other.__class__ is SymVar:
            return self.name == other.name and self.sort == other.sort
        return NotImplemented

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (SymVar, (self.name, self.sort))

    def __repr__(self) -> str:
        return f"SymVar(name={self.name!r}, sort={self.sort!r})"

    def __str__(self) -> str:
        return self.name


class App(Term):
    op: str
    args: Tuple[Term, ...]

    __slots__ = ("op", "args")

    def __new__(cls, op: str, args: Iterable[Term]) -> "App":
        args = tuple(args)
        try:
            key = (op, args)
            found = APPS.get(key)
        except TypeError:  # an argument with unhashable payload
            return cls._build(op, args, None)
        if found is not None:
            return found
        return APPS.put(key, cls._build(op, args, hash(key)))

    @classmethod
    def _build(cls, op: str, args: Tuple[Term, ...], cached_hash: "int | None") -> "App":
        self = object.__new__(cls)
        _set(self, "op", op)
        _set(self, "args", args)
        _set(self, "_hash", cached_hash)
        return self

    def __eq__(self, other: Any) -> Any:
        if self is other:
            return True
        if other.__class__ is App:
            h1, h2 = self._hash, other._hash
            if h1 is not None and h2 is not None and h1 != h2:
                return False
            return self.op == other.op and self.args == other.args
        return NotImplemented

    __hash__ = Term.__hash__

    def __reduce__(self):
        return (App, (self.op, self.args))

    def __repr__(self) -> str:
        return f"App(op={self.op!r}, args={self.args!r})"

    def __str__(self) -> str:
        if len(self.args) == 2 and not self.op.isalnum():
            return f"({self.args[0]} {self.op} {self.args[1]})"
        return f"{self.op}({', '.join(map(str, self.args))})"


# -- interpretation of operators ------------------------------------------------


def _int_div(left: int, right: int) -> int:
    return left // right if right != 0 else 0


def _int_mod(left: int, right: int) -> int:
    return left % right if right != 0 else 0


_BUILTIN_OPS: dict[str, Callable[..., Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _int_div,
    "%": _int_mod,
    "neg": lambda a: -a,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "not": lambda a: not a,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "implies": lambda a, b: (not a) or bool(b),
    "ite": lambda c, t, e: t if c else e,
}

OPERATIONS: dict[str, Callable[..., Any]] = {**_BUILTIN_OPS, **PURE_FUNCTIONS}


class UnknownOperation(Exception):
    pass


def evaluate_term(term: Term, assignment: Mapping[str, Any]) -> Any:
    """Evaluate a closed-under-``assignment`` term to a value.

    This is the *reference* evaluator: a direct recursive walk.  The hot
    enumeration loop of :mod:`repro.smt.solver` uses the closure compiler
    (:mod:`repro.smt.compile`) instead, which is validated against this
    function property-by-property.
    """
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SymVar):
        if term.name not in assignment:
            raise KeyError(f"unassigned symbolic variable {term.name!r}")
        return assignment[term.name]
    if isinstance(term, App):
        # 'and'/'or'/'implies'/'ite' evaluate lazily so that guarded
        # sub-terms (e.g. division or indexing) are safe.
        if term.op == "and":
            return all(bool(evaluate_term(arg, assignment)) for arg in term.args)
        if term.op == "or":
            return any(bool(evaluate_term(arg, assignment)) for arg in term.args)
        if term.op == "implies":
            if not evaluate_term(term.args[0], assignment):
                return True
            return bool(evaluate_term(term.args[1], assignment))
        if term.op == "ite":
            if evaluate_term(term.args[0], assignment):
                return evaluate_term(term.args[1], assignment)
            return evaluate_term(term.args[2], assignment)
        operation = OPERATIONS.get(term.op)
        if operation is None:
            raise UnknownOperation(term.op)
        return operation(*(evaluate_term(arg, assignment) for arg in term.args))
    raise TypeError(f"not a term: {term!r}")


@memoize_term_fn
def free_symvars(term: Term) -> frozenset[SymVar]:
    if isinstance(term, Const):
        return frozenset()
    if isinstance(term, SymVar):
        return frozenset({term})
    if isinstance(term, App):
        result: frozenset[SymVar] = frozenset()
        for arg in term.args:
            result |= free_symvars(arg)
        return result
    raise TypeError(f"not a term: {term!r}")


def substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    if isinstance(term, Const):
        return term
    if isinstance(term, SymVar):
        return mapping.get(term.name, term)
    if isinstance(term, App):
        return App(term.op, tuple(substitute(arg, mapping) for arg in term.args))
    raise TypeError(f"not a term: {term!r}")


@memoize_term_fn
def int_constants(term: Term) -> frozenset[int]:
    """Integer constants occurring in a term (used to widen scopes)."""
    if isinstance(term, Const):
        if isinstance(term.value, bool):
            return frozenset()
        if isinstance(term.value, int):
            return frozenset({term.value})
        return frozenset()
    if isinstance(term, SymVar):
        return frozenset()
    if isinstance(term, App):
        result: frozenset[int] = frozenset()
        for arg in term.args:
            result |= int_constants(arg)
        return result
    raise TypeError(f"not a term: {term!r}")


# -- convenience constructors ----------------------------------------------------


def conj(*terms: Term) -> Term:
    terms = tuple(t for t in terms if t != Const(True))
    if not terms:
        return Const(True)
    if any(t == Const(False) for t in terms):
        return Const(False)
    result = terms[0]
    for term in terms[1:]:
        result = App("and", (result, term))
    return result


def disj(*terms: Term) -> Term:
    terms = tuple(t for t in terms if t != Const(False))
    if not terms:
        return Const(False)
    if any(t == Const(True) for t in terms):
        return Const(True)
    result = terms[0]
    for term in terms[1:]:
        result = App("or", (result, term))
    return result


def implies(antecedent: Term, consequent: Term) -> Term:
    return App("implies", (antecedent, consequent))


def eq(left: Term, right: Term) -> Term:
    return App("==", (left, right))


def negate(term: Term) -> Term:
    return App("not", (term,))


_LANG_BINOPS = {"&&": "and", "||": "or"}
_LANG_UNOPS = {"-": "neg", "!": "not"}


def from_expr(expr: lang_ast.Expr, rename: Mapping[str, Term] | None = None) -> Term:
    """Lift an object-language expression to a term.

    ``rename`` maps program variable names to terms (e.g. to the left/right
    copies in a product construction); unmapped variables become symbolic
    variables of unknown sort.
    """
    rename = rename or {}
    if isinstance(expr, lang_ast.Lit):
        return Const(expr.value)
    if isinstance(expr, lang_ast.Var):
        mapped = rename.get(expr.name)
        if mapped is not None:
            return mapped
        from .sorts import INT

        return SymVar(expr.name, INT)
    if isinstance(expr, lang_ast.BinOp):
        op = _LANG_BINOPS.get(expr.op, expr.op)
        return App(op, (from_expr(expr.left, rename), from_expr(expr.right, rename)))
    if isinstance(expr, lang_ast.UnOp):
        return App(_LANG_UNOPS[expr.op], (from_expr(expr.operand, rename),))
    if isinstance(expr, lang_ast.Call):
        return App(expr.function, tuple(from_expr(arg, rename) for arg in expr.args))
    raise TypeError(f"not an expression: {expr!r}")
