"""A many-sorted first-order term language.

Terms are the currency of the verifier's verification conditions.  The
interpreted operations are the object language's operators plus the pure
functions of :mod:`repro.lang.values`, so any program expression can be
lifted to a term (:func:`from_expr`) and any term evaluated under a
variable assignment (:func:`evaluate_term`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Tuple

from ..lang import ast as lang_ast
from ..lang.values import PURE_FUNCTIONS
from .sorts import Sort


class Term:
    __slots__ = ()


@dataclass(frozen=True)
class Const(Term):
    value: Any

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SymVar(Term):
    name: str
    sort: Sort

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class App(Term):
    op: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        if len(self.args) == 2 and not self.op.isalnum():
            return f"({self.args[0]} {self.op} {self.args[1]})"
        return f"{self.op}({', '.join(map(str, self.args))})"


# -- interpretation of operators ------------------------------------------------


def _int_div(left: int, right: int) -> int:
    return left // right if right != 0 else 0


def _int_mod(left: int, right: int) -> int:
    return left % right if right != 0 else 0


_BUILTIN_OPS: dict[str, Callable[..., Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _int_div,
    "%": _int_mod,
    "neg": lambda a: -a,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "not": lambda a: not a,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "implies": lambda a, b: (not a) or bool(b),
    "ite": lambda c, t, e: t if c else e,
}

OPERATIONS: dict[str, Callable[..., Any]] = {**_BUILTIN_OPS, **PURE_FUNCTIONS}


class UnknownOperation(Exception):
    pass


def evaluate_term(term: Term, assignment: Mapping[str, Any]) -> Any:
    """Evaluate a closed-under-``assignment`` term to a value."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SymVar):
        if term.name not in assignment:
            raise KeyError(f"unassigned symbolic variable {term.name!r}")
        return assignment[term.name]
    if isinstance(term, App):
        # 'and'/'or'/'implies'/'ite' evaluate lazily so that guarded
        # sub-terms (e.g. division or indexing) are safe.
        if term.op == "and":
            return all(bool(evaluate_term(arg, assignment)) for arg in term.args)
        if term.op == "or":
            return any(bool(evaluate_term(arg, assignment)) for arg in term.args)
        if term.op == "implies":
            if not evaluate_term(term.args[0], assignment):
                return True
            return bool(evaluate_term(term.args[1], assignment))
        if term.op == "ite":
            if evaluate_term(term.args[0], assignment):
                return evaluate_term(term.args[1], assignment)
            return evaluate_term(term.args[2], assignment)
        operation = OPERATIONS.get(term.op)
        if operation is None:
            raise UnknownOperation(term.op)
        return operation(*(evaluate_term(arg, assignment) for arg in term.args))
    raise TypeError(f"not a term: {term!r}")


def free_symvars(term: Term) -> frozenset[SymVar]:
    if isinstance(term, Const):
        return frozenset()
    if isinstance(term, SymVar):
        return frozenset({term})
    if isinstance(term, App):
        result: frozenset[SymVar] = frozenset()
        for arg in term.args:
            result |= free_symvars(arg)
        return result
    raise TypeError(f"not a term: {term!r}")


def substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    if isinstance(term, Const):
        return term
    if isinstance(term, SymVar):
        return mapping.get(term.name, term)
    if isinstance(term, App):
        return App(term.op, tuple(substitute(arg, mapping) for arg in term.args))
    raise TypeError(f"not a term: {term!r}")


def int_constants(term: Term) -> frozenset[int]:
    """Integer constants occurring in a term (used to widen scopes)."""
    if isinstance(term, Const):
        if isinstance(term.value, bool):
            return frozenset()
        if isinstance(term.value, int):
            return frozenset({term.value})
        return frozenset()
    if isinstance(term, SymVar):
        return frozenset()
    if isinstance(term, App):
        result: frozenset[int] = frozenset()
        for arg in term.args:
            result |= int_constants(arg)
        return result
    raise TypeError(f"not a term: {term!r}")


# -- convenience constructors ----------------------------------------------------


def conj(*terms: Term) -> Term:
    terms = tuple(t for t in terms if t != Const(True))
    if not terms:
        return Const(True)
    result = terms[0]
    for term in terms[1:]:
        result = App("and", (result, term))
    return result


def disj(*terms: Term) -> Term:
    if not terms:
        return Const(False)
    result = terms[0]
    for term in terms[1:]:
        result = App("or", (result, term))
    return result


def implies(antecedent: Term, consequent: Term) -> Term:
    return App("implies", (antecedent, consequent))


def eq(left: Term, right: Term) -> Term:
    return App("==", (left, right))


def negate(term: Term) -> Term:
    return App("not", (term,))


_LANG_BINOPS = {"&&": "and", "||": "or"}
_LANG_UNOPS = {"-": "neg", "!": "not"}


def from_expr(expr: lang_ast.Expr, rename: Mapping[str, Term] | None = None) -> Term:
    """Lift an object-language expression to a term.

    ``rename`` maps program variable names to terms (e.g. to the left/right
    copies in a product construction); unmapped variables become symbolic
    variables of unknown sort.
    """
    rename = rename or {}
    if isinstance(expr, lang_ast.Lit):
        return Const(expr.value)
    if isinstance(expr, lang_ast.Var):
        mapped = rename.get(expr.name)
        if mapped is not None:
            return mapped
        from .sorts import INT

        return SymVar(expr.name, INT)
    if isinstance(expr, lang_ast.BinOp):
        op = _LANG_BINOPS.get(expr.op, expr.op)
        return App(op, (from_expr(expr.left, rename), from_expr(expr.right, rename)))
    if isinstance(expr, lang_ast.UnOp):
        return App(_LANG_UNOPS[expr.op], (from_expr(expr.operand, rename),))
    if isinstance(expr, lang_ast.Call):
        return App(expr.function, tuple(from_expr(arg, rename) for arg in expr.args))
    raise TypeError(f"not an expression: {expr!r}")
