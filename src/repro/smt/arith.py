"""Difference-logic theory propagation for integer order atoms.

The DPLL(T) core of :mod:`repro.smt.dpll` propagates equality atoms
through congruence closure (:class:`repro.smt.euf.EqualityPropagator`);
before this module every verification condition mixing *order* atoms
(``<``/``<=``/``>``/``>=``) fell back to bounded model enumeration.
This module closes that gap for the **integer difference-logic
fragment**: atoms that normalize to a difference constraint

    ``u - v <= k``        (``u``, ``v`` integer variables, ``k ∈ ℤ``)

after folding strictness (``u < v  ⟺  u - v <= -1`` over the integers)
and moving ``± constant`` offsets into the bound.  The decision
procedure is the classical constraint graph: a conjunction of
difference constraints is satisfiable iff the graph with one edge
``v →(k) u`` per constraint has no negative cycle, and a constraint is
entailed iff a path of total weight ``<= k`` connects ``v`` to ``u``.

:class:`DifferenceLogicPropagator` maintains that graph *incrementally
along the boolean trail* (the same assert / backjump / check protocol as
``EqualityPropagator``):

* each asserted order literal adds its edge and repairs a feasible
  **potential function** with a Dijkstra-style relaxation (Cotton–Maler;
  the incremental form of Bellman–Ford — only nodes whose potential the
  new edge disturbs are re-relaxed);
* a relaxation that reaches back to the new edge's tail has found a
  **negative cycle**: the theory conflict is reported with a *minimal
  explanation* — exactly the literals labelling the cycle's edges;
* at every propagation fixpoint, unassigned atoms whose constraint (or
  whose negation) is entailed by a shortest path are enqueued into the
  boolean trail, with the path's literals as premises.

Equality atoms between difference-logic terms participate too: an
asserted ``x == y`` contributes the edge pair ``x - y <= 0`` /
``y - x <= 0``, and a tight pair of paths propagates the equality atom
back — so the equality and difference-logic propagators of a
:class:`PropagatorStack` exchange entailed equalities *through the
shared boolean trail* without a bespoke Nelson–Oppen channel.

:func:`mixed_consistent` is the model-level companion: the joint
EUF + difference-logic satisfiability check applied to full boolean
models in the mixed fragment, with equality exchange run to a fixpoint
in both directions.  Its "inconsistent" verdicts are always genuine
(each round only adds entailed facts), which is what makes the blocking
clauses of the mixed DPLL(T) loop globally sound theory lemmas; a
"consistent" verdict outside the exchanged envelope merely sends the
caller to the bounded enumerator.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .euf import CongruenceClosure, is_equality_atom
from .sorts import INT
from .terms import App, Const, SymVar, Term

ORDER_OPS = frozenset({"<", "<=", ">", ">="})


def is_order_atom(term: Term) -> bool:
    """A binary comparison atom (not necessarily difference-logic)."""
    return isinstance(term, App) and term.op in ORDER_OPS and len(term.args) == 2


class _ZeroNode:
    """The distinguished graph node interpreted as the integer 0, so
    one-sided bounds (``x <= 3``) become difference constraints too."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return "«0»"


ZERO = _ZeroNode()

#: A difference constraint ``u - v <= k``: (u, v, k).
Constraint = Tuple[object, object, int]


def _linear(term: Term, sign: int, coeffs: Dict[Term, int]) -> Optional[int]:
    """Accumulate ``sign * term`` into ``coeffs`` as a ±1 linear
    combination of integer variables; returns the constant part, or
    None if the term is outside the fragment."""
    if isinstance(term, Const):
        value = term.value
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        return sign * value
    if isinstance(term, SymVar):
        if term.sort != INT:
            return None
        coeffs[term] = coeffs.get(term, 0) + sign
        return 0
    if isinstance(term, App):
        if term.op == "+" and len(term.args) == 2:
            left = _linear(term.args[0], sign, coeffs)
            if left is None:
                return None
            right = _linear(term.args[1], sign, coeffs)
            return None if right is None else left + right
        if term.op == "-" and len(term.args) == 2:
            left = _linear(term.args[0], sign, coeffs)
            if left is None:
                return None
            right = _linear(term.args[1], -sign, coeffs)
            return None if right is None else left + right
        if term.op == "neg" and len(term.args) == 1:
            return _linear(term.args[0], -sign, coeffs)
    return None


def _difference(left: Term, right: Term) -> Optional[Tuple[object, object, int]]:
    """``left - right`` as ``u - v + c`` with at most one positive and
    one negative variable (``ZERO`` standing in for an absent side)."""
    coeffs: Dict[Term, int] = {}
    left_const = _linear(left, 1, coeffs)
    if left_const is None:
        return None
    right_const = _linear(right, -1, coeffs)
    if right_const is None:
        return None
    positive = [v for v, c in coeffs.items() if c == 1]
    negative = [v for v, c in coeffs.items() if c == -1]
    balanced = len(positive) + len(negative) == sum(
        1 for c in coeffs.values() if c != 0
    )
    if not balanced or len(positive) > 1 or len(negative) > 1:
        return None
    u = positive[0] if positive else ZERO
    v = negative[0] if negative else ZERO
    return u, v, left_const + right_const


def normalize_order_atom(atom: Term) -> Optional[Constraint]:
    """The difference constraint ``u - v <= k`` asserted by the
    *positive* literal of an order atom, or None outside the fragment.

    ``>``/``>=`` swap sides; strict bounds shift by one (integers)."""
    if not is_order_atom(atom):
        return None
    left, right = atom.args
    op = atom.op
    if op in (">", ">="):
        left, right = right, left
        strict = op == ">"
    else:
        strict = op == "<"
    parts = _difference(left, right)
    if parts is None:
        return None
    u, v, constant = parts
    return u, v, (-1 if strict else 0) - constant


def normalize_equality_atom(atom: Term) -> Optional[Tuple[Constraint, Constraint]]:
    """The edge pair asserted by an integer equality ``left == right``
    (``u - v <= d`` and ``v - u <= -d``), or None outside the fragment."""
    if not is_equality_atom(atom):
        return None
    parts = _difference(*atom.args)
    if parts is None:
        return None
    u, v, constant = parts
    return (u, v, -constant), (v, u, constant)


def negated_constraint(constraint: Constraint) -> Constraint:
    """``¬(u - v <= k)  ⟺  v - u <= -k - 1`` over the integers."""
    u, v, k = constraint
    return v, u, -k - 1


def is_difference_atom(term: Term) -> bool:
    """An order atom the difference-logic propagator can decide."""
    return normalize_order_atom(term) is not None


def is_offset_equality_atom(term: Term) -> bool:
    """An integer equality atom carrying arithmetic structure (an offset
    or subtraction on a side), so congruence closure alone cannot see
    its difference content — ``x == y + 1`` is consistent for EUF even
    alongside ``y == x + 1``.  Such atoms route a formula into the mixed
    loop even when no order atom occurs."""
    if not is_equality_atom(term) or normalize_equality_atom(term) is None:
        return False
    return any(
        isinstance(side, App) and side.op in ("+", "-", "neg")
        for side in term.args
    )


# ---------------------------------------------------------------------------
# The theory propagator
# ---------------------------------------------------------------------------


class DifferenceLogicPropagator:
    """DPLL(T) theory propagator for the integer difference fragment.

    Implements the same protocol as
    :class:`repro.smt.euf.EqualityPropagator` — ``reset`` /
    ``assert_literal`` / ``backjump`` / ``check`` / ``atom_vars`` /
    ``rescan`` — so the two compose in a :class:`PropagatorStack` over
    one boolean trail.

    The constraint graph carries one edge ``v →(k) u`` per asserted
    constraint ``u - v <= k``, together with a *potential* ``π`` keeping
    every edge's reduced cost ``π(v) + k - π(u)`` non-negative (a
    feasible solution, maintained by incremental Bellman–Ford
    relaxation).  Asserts are incremental in the forward direction; a
    backjump marks the graph dirty and the next use replays the
    surviving prefix of the mirrored trail (the potential survives as a
    warm start — removing edges never invalidates it).

    Conflict explanations are **minimal**: exactly the literals
    labelling the edges of the detected negative cycle.  Propagation
    premises are the literals along the entailing shortest path.
    """

    __slots__ = (
        "_table", "_atoms", "_atoms_by_node", "_trivial", "_live",
        "_stack", "_dirty",
        "_pi", "_out", "_edges", "_active", "_conflict", "_tick",
        "propagations", "conflicts",
    )

    def __init__(self, table) -> None:
        self._table = table
        #: var -> ("order", constraint) | ("eq", edge, mirror, positive_is_eq)
        self._atoms: Dict[int, tuple] = {}
        #: node -> atom vars mentioning it, so a check only visits atoms
        #: whose nodes the *current* constraint graph touches — per-query
        #: cost stays proportional to the query, not to the lifetime of
        #: a session's shared atom table.
        self._atoms_by_node: Dict[object, List[int]] = {}
        #: atoms whose constraint relates a node to itself (``x <= x+3``):
        #: constant-valued, propagated premise-free.
        self._trivial: List[int] = []
        #: the atoms currently mirrored and propagated — an alias of
        #: ``_atoms`` until :meth:`focus` narrows it, so the unfocused
        #: (fresh-solver) hot path pays nothing.
        self._live: Dict[int, tuple] = self._atoms
        self.rescan()
        self._stack: List[int] = []  # mirrored trail (0 for ignored literals)
        self._dirty = False
        self._pi: Dict[object, int] = {}
        self._out: Dict[object, List[int]] = {}
        self._edges: List[Tuple[object, object, int, int]] = []
        self._active: set = set()  # nodes incident to a current edge
        self._conflict: Optional[List[int]] = None
        self._tick = count()  # heap tiebreaker: graph nodes are unordered
        self.propagations = 0
        self.conflicts = 0

    # -- protocol ---------------------------------------------------------

    def atom_vars(self) -> Iterable[int]:
        """The boolean variables this propagator may assert or consume."""
        return self._atoms.keys()

    def rescan(self) -> None:
        """Pick up atoms added to the shared table since construction
        (sessions grow one table across VCs); known atoms keep their
        entries, so the mirrored trail stays consistent."""
        atoms = self._atoms
        by_node = self._atoms_by_node
        for index, term in self._table.atoms().items():
            if index in atoms:
                continue
            constraint = normalize_order_atom(term)
            if constraint is not None:
                atoms[index] = ("order", constraint)
            else:
                pair = normalize_equality_atom(term)
                if pair is None:
                    continue
                atoms[index] = ("eq", pair[0], pair[1], term.op == "==")
                constraint = pair[0]
            u, v, _k = constraint
            if u is v:
                self._trivial.append(index)
            else:
                by_node.setdefault(u, []).append(index)
                by_node.setdefault(v, []).append(index)

    def focus(self, variables: "Optional[Iterable[int]]") -> None:
        """Restrict mirroring and propagation to these atom vars (None =
        every known atom).  A shared session focuses each activated
        query on its own atoms: stale atoms from retired queries are
        treated exactly like a fresh solver that never saw them."""
        if variables is None:
            self._live = self._atoms
        else:
            atoms = self._atoms
            self._live = {
                var: atoms[var] for var in variables if var in atoms
            }

    def reset(self) -> None:
        """Forget the mirrored trail (start of a ``solve`` call)."""
        self._stack.clear()
        self._dirty = True

    def assert_literal(self, literal: int) -> None:
        """Mirror one trail literal (ignored unless a focused
        difference-logic atom)."""
        info = self._live.get(abs(literal))
        if info is None:
            self._stack.append(0)
            return
        self._stack.append(literal)
        if not self._dirty and self._conflict is None:
            self._apply(literal, info)

    def backjump(self, keep: int) -> None:
        """Truncate the mirrored trail to its first ``keep`` entries."""
        del self._stack[keep:]
        self._dirty = True

    def check(self, assign: Sequence[int]):
        """Theory-check the mirrored trail.

        Returns ``("conflict", clause)`` — every clause literal false,
        the negations of a negative cycle's labels — or
        ``("ok", propagations)`` with ``(literal, premises)`` pairs."""
        if self._dirty:
            self._rebuild()
        if self._conflict is not None:
            return "conflict", [-literal for literal in self._conflict]
        implied: List[Tuple[int, List[int]]] = []
        shortest: Dict[object, tuple] = {}
        n = len(assign)
        # A non-trivial atom is only entailable through a path between
        # its two nodes, which requires both to be incident to current
        # edges: visit exactly those (plus the constant-valued ones),
        # keeping the scan proportional to the query rather than to the
        # whole shared session table.
        active = self._active
        by_node = self._atoms_by_node
        live = self._live
        candidates: List[int] = [var for var in self._trivial if var in live]
        seen: set = set(candidates)
        for node in active:
            for var in by_node.get(node, ()):
                if var not in seen and var in live:
                    seen.add(var)
                    candidates.append(var)
        for var in candidates:
            info = live[var]
            u, v, _k = info[1]
            if u is not v and (u not in active or v not in active):
                continue  # no path can connect them in the current graph
            # assign is literal-indexed: slot 2*var carries the value of
            # the positive literal (0 unassigned, ±1).
            value = assign[var << 1] if (var << 1) < n else 0
            if info[0] == "order":
                # An assigned order atom's constraint is an edge, so any
                # contradiction already surfaced as a negative cycle;
                # only unassigned ones can still be propagated.
                if value != 0:
                    continue
                constraint = info[1]
                premises = self._entails(constraint, shortest)
                if premises is not None:
                    implied.append((var, premises))
                    continue
                premises = self._entails(negated_constraint(constraint), shortest)
                if premises is not None:
                    implied.append((-var, premises))
                continue
            _kind, edge, mirror, positive_is_eq = info
            true_literal = var if positive_is_eq else -var
            asserted_true = value != 0 and (value > 0) == (true_literal > 0)
            if not asserted_true:
                forward = self._entails(edge, shortest)
                if forward is not None:
                    backward = self._entails(mirror, shortest)
                    if backward is not None:
                        implied.append((true_literal, _dedupe(forward + backward)))
                        continue
            asserted_false = value != 0 and not asserted_true
            if not asserted_false:
                refuted = self._entails(negated_constraint(edge), shortest)
                if refuted is None:
                    refuted = self._entails(negated_constraint(mirror), shortest)
                if refuted is not None:
                    implied.append((-true_literal, refuted))
        self.propagations += len(implied)
        return "ok", implied

    # -- constraint graph -------------------------------------------------

    def _constraints_for(self, literal: int, info: tuple) -> Tuple[Constraint, ...]:
        if info[0] == "order":
            constraint = info[1]
            return (constraint,) if literal > 0 else (negated_constraint(constraint),)
        _kind, edge, mirror, positive_is_eq = info
        if (literal > 0) == positive_is_eq:
            return edge, mirror  # asserted equality: both directions
        return ()  # a disequality is disjunctive: left to congruence closure

    def _apply(self, literal: int, info: tuple) -> None:
        for constraint in self._constraints_for(literal, info):
            cycle = self._add_edge(constraint, literal)
            if cycle is not None:
                self._conflict = cycle
                self.conflicts += 1
                return

    def _rebuild(self) -> None:
        self._out = {}
        self._edges = []
        self._active = set()
        self._conflict = None
        self._dirty = False
        atoms = self._atoms
        for literal in self._stack:
            if literal and self._conflict is None:
                self._apply(literal, atoms[abs(literal)])

    def _add_edge(self, constraint: Constraint, literal: int) -> Optional[List[int]]:
        """Add ``u - v <= k``; repair the potential; the literals of a
        negative cycle if the new edge closes one, else None."""
        u, v, k = constraint
        if u is v:
            return [literal] if k < 0 else None  # x - x <= k
        pi = self._pi
        pi.setdefault(u, 0)
        pi.setdefault(v, 0)
        index = len(self._edges)
        self._edges.append((v, u, k, literal))
        self._out.setdefault(v, []).append(index)
        self._active.add(u)
        self._active.add(v)
        slack = pi[v] + k - pi[u]
        if slack >= 0:
            return None
        # Dijkstra-style relaxation over reduced costs from the edge's
        # head: decrease π only where the new edge forces it.
        needed: Dict[object, int] = {u: slack}
        pred: Dict[object, int] = {u: index}
        done: set = set()
        tick = self._tick
        heap: List[tuple] = [(slack, next(tick), u)]
        edges = self._edges
        out = self._out
        while heap:
            drop, _, node = heappop(heap)
            if node in done or drop > needed.get(node, 0):
                continue
            if drop >= 0:
                break
            if node is v:
                # Reached the new edge's tail with a net decrease: the
                # pred chain plus the new edge is a negative cycle.
                literals: List[int] = []
                current = v
                while True:
                    edge_index = pred[current]
                    source, _dst, _w, label = edges[edge_index]
                    literals.append(label)
                    if edge_index == index:
                        return _dedupe(literals)
                    current = source
            done.add(node)
            pi[node] += drop
            needed[node] = 0
            for edge_index in out.get(node, ()):
                _src, target, weight, _label = edges[edge_index]
                if target in done:
                    continue
                slack = pi[node] + weight - pi[target]
                if slack < needed.get(target, 0):
                    needed[target] = slack
                    pred[target] = edge_index
                    heappush(heap, (slack, next(tick), target))
        return None

    def _shortest_from(self, source) -> tuple:
        """Shortest reduced-cost distances and predecessor edges from
        ``source`` (Dijkstra; the potential keeps weights non-negative)."""
        pi = self._pi
        edges = self._edges
        out = self._out
        dist: Dict[object, int] = {source: 0}
        pred: Dict[object, int] = {}
        done: set = set()
        tick = self._tick
        heap: List[tuple] = [(0, next(tick), source)]
        while heap:
            d, _, node = heappop(heap)
            if node in done:
                continue
            done.add(node)
            for edge_index in out.get(node, ()):
                _src, target, weight, _label = edges[edge_index]
                if target in done:
                    continue
                candidate = d + pi[node] + weight - pi[target]
                if candidate < dist.get(target, candidate + 1):
                    dist[target] = candidate
                    pred[target] = edge_index
                    heappush(heap, (candidate, next(tick), target))
        return dist, pred

    def _entails(self, constraint: Constraint, shortest: Dict[object, tuple]):
        """The premise literals entailing ``u - v <= k`` (a path from
        ``v`` to ``u`` of weight ``<= k``), or None if not entailed."""
        u, v, k = constraint
        if u is v:
            return [] if k >= 0 else None
        pi = self._pi
        if u not in pi or v not in pi:
            return None
        paths = shortest.get(v)
        if paths is None:
            paths = shortest[v] = self._shortest_from(v)
        dist, pred = paths
        reduced = dist.get(u)
        if reduced is None or reduced + pi[u] - pi[v] > k:
            return None
        literals: List[int] = []
        node = u
        while node is not v:
            edge_index = pred[node]
            source, _dst, _w, label = self._edges[edge_index]
            literals.append(label)
            node = source
        return _dedupe(literals)


def _dedupe(literals: List[int]) -> List[int]:
    seen: set = set()
    unique: List[int] = []
    for literal in literals:
        if literal not in seen:
            seen.add(literal)
            unique.append(literal)
    return unique


# ---------------------------------------------------------------------------
# Propagator composition
# ---------------------------------------------------------------------------


class PropagatorStack:
    """Several theory propagators sharing one boolean trail.

    Implements the propagator protocol itself, so
    :meth:`repro.smt.dpll.WatchedSolver.attach_theory` accepts a stack
    wherever it accepts a single propagator.  Trail events fan out to
    every element; ``check`` returns the first conflict, otherwise the
    concatenated propagations.  Elements exchange entailed facts
    *through the trail*: a literal one theory propagates is mirrored
    into every other theory at the next fixpoint.
    """

    __slots__ = ("_propagators",)

    def __init__(self, *propagators) -> None:
        self._propagators = tuple(propagators)

    @property
    def elements(self) -> tuple:
        return self._propagators

    def atom_vars(self) -> Iterable[int]:
        variables: set = set()
        for propagator in self._propagators:
            variables.update(propagator.atom_vars())
        return variables

    def rescan(self) -> None:
        for propagator in self._propagators:
            propagator.rescan()

    def focus(self, variables) -> None:
        for propagator in self._propagators:
            propagator.focus(variables)

    def reset(self) -> None:
        for propagator in self._propagators:
            propagator.reset()

    def assert_literal(self, literal: int) -> None:
        for propagator in self._propagators:
            propagator.assert_literal(literal)

    def backjump(self, keep: int) -> None:
        for propagator in self._propagators:
            propagator.backjump(keep)

    def check(self, assign: Sequence[int]):
        implied: List[Tuple[int, List[int]]] = []
        for propagator in self._propagators:
            status, payload = propagator.check(assign)
            if status == "conflict":
                return status, payload
            implied.extend(payload)
        return "ok", implied

    @property
    def propagations(self) -> int:
        return sum(p.propagations for p in self._propagators)

    @property
    def conflicts(self) -> int:
        return sum(p.conflicts for p in self._propagators)


# ---------------------------------------------------------------------------
# Model-level joint consistency (the mixed fragment's blocking oracle)
# ---------------------------------------------------------------------------


def _floyd_warshall(nodes: List[object], edges: List[Constraint]):
    """All-pairs shortest paths; None when a negative cycle exists."""
    dist: Dict[object, Dict[object, int]] = {a: {a: 0} for a in nodes}
    for u, v, k in edges:
        row = dist.setdefault(v, {v: 0})
        if k < row.get(u, k + 1):
            row[u] = k
        dist.setdefault(u, {u: 0})
    for middle in dist:
        middle_row = dist[middle]
        for a in dist:
            through = dist[a].get(middle)
            if through is None:
                continue
            row = dist[a]
            for b, tail in list(middle_row.items()):
                candidate = through + tail
                if candidate < row.get(b, candidate + 1):
                    row[b] = candidate
    for a in dist:
        if dist[a].get(a, 0) < 0:
            return None
    return dist


def _node_term(node) -> Term:
    return Const(0) if node is ZERO else node


def mixed_consistent(
    equalities: Sequence[Tuple[Term, Term]],
    disequalities: Sequence[Tuple[Term, Term]],
    orders: Sequence[Tuple[Term, bool]],
) -> bool:
    """Joint satisfiability of ``⋀ eqs ∧ ⋀ neqs ∧ ⋀ orders`` over
    EUF + integer difference logic.

    ``orders`` pairs each order atom with its asserted boolean value;
    every atom must be in the difference fragment (the callers check the
    whole formula before entering the mixed DPLL(T) loop).

    Equalities are exchanged between the theories to a fixpoint:
    congruence-merged difference variables become zero-weight edge
    pairs, and tight difference cycles (``dist(a,b) = dist(b,a) = 0``,
    or a variable pinned to an exact constant) become merges.  Every
    exchanged fact is entailed, so an "inconsistent" verdict is genuine
    — the property the mixed loop's unguarded blocking lemmas rely on.
    A "consistent" verdict outside this envelope is an
    over-approximation; the caller falls back to bounded enumeration.
    """
    constraints: List[Constraint] = []
    for atom, value in orders:
        constraint = normalize_order_atom(atom)
        if constraint is None:
            raise ValueError(f"not a difference-logic atom: {atom!r}")
        constraints.append(constraint if value else negated_constraint(constraint))
    return _search_consistent(
        list(equalities), list(disequalities), constraints, _SPLIT_LIMIT
    )


#: Bound on disequality case splits per model-level check (each split
#: resolves one diseq whose pinpoint sits inside a bounded difference
#: range, so the worst case is 2^limit tiny graph checks).
_SPLIT_LIMIT = 8


def _search_consistent(
    equalities: List[Tuple[Term, Term]],
    disequalities: List[Tuple[Term, Term]],
    constraints: List[Constraint],
    splits: int,
) -> bool:
    derived: List[Tuple[Term, Term]] = []
    while True:
        closure = CongruenceClosure()
        for left, right in equalities:
            closure.merge(left, right)
        for left, right in derived:
            closure.merge(left, right)
        # Distinct constants in one class: inconsistent (and label the
        # classes so difference variables pinned by EUF gain bounds).
        labels: Dict[Term, Const] = {}
        for constant in closure.constants():
            root = closure.find(constant)
            seen = labels.get(root)
            if seen is not None and seen.value != constant.value:
                return False
            labels.setdefault(root, constant)
        for left, right in disequalities:
            if left == right or closure.same(left, right):
                return False

        edges = list(constraints)
        for left, right in equalities:
            pair = normalize_equality_atom(App("==", (left, right)))
            if pair is not None:
                edges.extend(pair)
        nodes: List[object] = []
        seen_nodes: set = set()
        for u, v, _k in edges:
            for node in (u, v):
                if node not in seen_nodes:
                    seen_nodes.add(node)
                    nodes.append(node)
        # EUF → difference logic: merged variables are zero apart, and a
        # class labelled with an integer constant pins its variables.
        by_root: Dict[Term, List[object]] = {}
        for node in nodes:
            root = closure.find(_node_term(node))
            by_root.setdefault(root, []).append(node)
            label = labels.get(root)
            if (
                node is not ZERO
                and label is not None
                and isinstance(label.value, int)
                and not isinstance(label.value, bool)
            ):
                if ZERO not in seen_nodes:
                    seen_nodes.add(ZERO)
                    nodes.append(ZERO)
                edges.append((node, ZERO, label.value))
                edges.append((ZERO, node, -label.value))
        for group in by_root.values():
            for first, second in zip(group, group[1:]):
                edges.append((first, second, 0))
                edges.append((second, first, 0))

        dist = _floyd_warshall(nodes, edges)
        if dist is None:
            return False  # negative cycle
        # A disequality whose sides the difference constraints pin to
        # the same value is inconsistent (covers offset terms like
        # ``y ≠ x + 1`` under ``x < y ∧ y < x + 2``, which no
        # congruence merge can express).
        for left, right in disequalities:
            parts = _difference(left, right)
            if parts is None:
                continue
            u, v, offset = parts  # left - right = (u - v) + offset
            if u is v:
                if offset == 0:
                    return False
                continue
            upper = dist.get(v, {}).get(u)  # strongest bound on u - v
            lower = dist.get(u, {}).get(v)  # strongest bound on v - u
            if (
                upper is not None
                and lower is not None
                and upper <= -offset
                and lower <= offset
            ):
                return False  # u - v forced to exactly -offset
        # Difference logic → EUF: tight cycles force equalities.
        new_equalities: List[Tuple[Term, Term]] = []
        for i, a in enumerate(nodes):
            row = dist.get(a, {})
            for b in nodes[i + 1:]:
                forward = row.get(b)
                backward = dist.get(b, {}).get(a)
                if forward == 0 and backward == 0:
                    term_a, term_b = _node_term(a), _node_term(b)
                    if not closure.same(term_a, term_b):
                        new_equalities.append((term_a, term_b))
        if ZERO in seen_nodes:
            zero_row = dist.get(ZERO, {})
            for node in nodes:
                if node is ZERO:
                    continue
                upper = zero_row.get(node)
                lower = dist.get(node, {}).get(ZERO)
                if upper is not None and lower is not None and upper + lower == 0:
                    pinned = Const(upper)
                    term = _node_term(node)
                    if not closure.same(term, pinned):
                        new_equalities.append((term, pinned))
        if not new_equalities:
            break
        derived.extend(new_equalities)

    # Exchange fixpoint reached without contradiction.  A disequality
    # whose pinpoint lies strictly inside a *bounded* difference range
    # is not decided by either theory alone (``0 <= x <= 1 ∧ x ≠ 0 ∧
    # x ≠ 1`` is the classic non-convexity case): split it into the two
    # integer-complement half-ranges and recurse.  The split is
    # exhaustive, so a both-branches-fail verdict is still genuine.
    if splits > 0:
        for left, right in disequalities:
            parts = _difference(left, right)
            if parts is None:
                continue
            u, v, offset = parts  # left - right = (u - v) + offset
            if u is v:
                continue  # constant difference: settled above
            upper = dist.get(v, {}).get(u)  # strongest bound on u - v
            lower = dist.get(u, {}).get(v)  # strongest bound on v - u
            if upper is None or lower is None:
                continue  # an unbounded side: the pinpoint is avoidable
            if -offset > upper or -offset < -lower:
                continue  # pinpoint outside the feasible range
            below = constraints + [(u, v, -offset - 1)]
            above = constraints + [(v, u, offset - 1)]
            return _search_consistent(
                equalities, disequalities, below, splits - 1
            ) or _search_consistent(equalities, disequalities, above, splits - 1)
    return True
