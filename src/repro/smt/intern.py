"""Hash-consing intern tables and memo caches for the term language.

Every :class:`~repro.smt.terms.Const`, :class:`~repro.smt.terms.SymVar`
and :class:`~repro.smt.terms.App` is routed through an intern table at
construction, so structurally equal terms are (almost always) the *same*
object: equality starts with an identity check, hashes are computed once
and cached on the node, and per-term analyses (``free_symvars``,
``int_constants``, ``simplify``, NNF, compilation) can be memoized by
node rather than recomputed on every recursive walk.

Two escape hatches keep the scheme total:

* terms whose payload is unhashable (e.g. a ``Const`` wrapping a mutable
  value produced by constant folding) are built *uninterned* with no
  cached hash — they behave exactly like the pre-interning dataclasses;
* :func:`clear_all_caches` empties every registered table.  Terms created
  before a clear remain valid: structural equality falls back to a field
  comparison whenever the identity fast path misses.

The tables hold strong references for the lifetime of the process — the
solver's working sets are small (verification conditions over a few
hundred unique nodes) and the memoized analyses dominate the savings.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Protocol


class _Clearable(Protocol):
    def clear(self) -> None: ...


_REGISTRY: List[_Clearable] = []


def register_cache(cache: _Clearable) -> Any:
    """Register a cache (anything with ``clear()``) for global clearing."""
    _REGISTRY.append(cache)
    return cache


def clear_all_caches() -> None:
    """Empty every registered intern table and memo cache.

    Safe at any time: outstanding terms stay usable because term equality
    falls back to structural comparison when identities diverge.
    """
    for cache in _REGISTRY:
        cache.clear()


#: Private miss sentinel: ``None`` (or any falsy value) is a perfectly
#: legitimate canonical instance, so membership cannot be tested against it.
_MISSING = object()


class InternTable:
    """A keyed table of canonical instances with hit/miss counters."""

    __slots__ = ("name", "hits", "misses", "_table")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self._table: Dict[Any, Any] = {}

    def get(self, key: Any, default: Any = None) -> Any:
        """Canonical instance for ``key``, or ``default`` (counts a
        hit/miss).  Membership is decided by a private sentinel, so a
        stored ``None``/falsy value is a genuine hit, not a miss."""
        found = self._table.get(key, _MISSING)
        if found is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return found

    def put(self, key: Any, value: Any) -> Any:
        self._table[key] = value
        return value

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for this table."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    def clear(self) -> None:
        self._table.clear()


#: The three intern tables backing the term constructors.
CONSTS = register_cache(InternTable("Const"))
SYMVARS = register_cache(InternTable("SymVar"))
APPS = register_cache(InternTable("App"))


def memoize_term_fn(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Memoize a pure unary function of an (interned) term.

    Unhashable terms (rare, see module docstring) bypass the cache.
    """
    cache: Dict[Any, Any] = {}
    register_cache(cache)

    def wrapper(term: Any) -> Any:
        try:
            result = cache.get(term, _MISSING)
        except TypeError:  # unhashable payload: compute without caching
            return fn(term)
        if result is _MISSING:
            result = fn(term)
            cache[term] = result
        return result

    wrapper.__name__ = getattr(fn, "__name__", "memoized")
    wrapper.__doc__ = fn.__doc__
    wrapper.cache = cache  # type: ignore[attr-defined]
    wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
    return wrapper


def stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counters for the three intern tables."""
    return {table.name: table.stats() for table in (CONSTS, SYMVARS, APPS)}
