"""Incremental solver sessions: one shared CDCL solver per verification run.

A proof outline discharges many small, structurally related validity
obligations.  Before this module each obligation built a fresh
:class:`~repro.smt.dpll.WatchedSolver` (and a fresh Tseitin conversion),
throwing away learned clauses, VSIDS activities, saved phases and theory
lemmas between VCs.  A :class:`SolverSession` keeps all of that alive
across the obligations of a run, MiniSat-style:

* the session owns one :class:`~repro.smt.cnf.TseitinConverter` (shared
  atom table + definition memo) and one shared solver per fragment, so a
  subformula occurring in several VCs is converted once and its
  definition clauses are emitted once;
* each VC is *activated* by a fresh assumption literal ``a``: the VC's
  root assertion is added as the guarded clause ``(root ∨ ¬a)`` and the
  query is solved under the assumption ``a``.  Clauses learned while
  ``a`` is assumed mention ``¬a`` (no clause ever contains the positive
  literal, so resolution cannot cancel it), which keeps them valid for
  every later query;
* after the query the activation literal is *retired*
  (:meth:`~repro.smt.dpll.WatchedSolver.retire`): the guarded clause and
  every learned clause mentioning ``¬a`` are dropped, so the clause
  database stays lean while activation-independent derived facts —
  theory lemmas, blocking clauses, premise-free units, variable
  activities and phases — carry over to the next obligation.

Two sub-sessions are kept, because their soundness regimes differ: a
*skeleton* session (no theory attached) answering propositional-validity
queries over arbitrary atoms, and an *EUF* session whose shared atom
table only ever contains ``==``/``!=`` atoms, with one incrementally
rescanned :class:`~repro.smt.euf.EqualityPropagator` attached.  VCs
outside the equality fragment fall back to the one-shot
:func:`~repro.smt.dpll.euf_valid` path, byte-for-byte preserving the
fresh-solver verdicts (the differential harness in
``tests/property/test_session_differential.py`` pins this).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .cnf import TseitinConverter, is_atom
from .dpll import WatchedSolver, _theory_literals, euf_valid
from .euf import EqualityPropagator, congruence_closure_consistent, is_equality_atom
from .terms import App, Const, Term


def in_euf_fragment(term: Term) -> bool:
    """True iff every atom of the term is a binary ``==``/``!=`` atom and
    at least one atom occurs — the fragment the shared EUF sub-session
    may accept without poisoning its propagator's atom table."""
    found = False
    stack = [term]
    visited: set = set()
    while stack:
        current = stack.pop()
        if isinstance(current, Const):
            continue
        if is_atom(current):
            if not is_equality_atom(current):
                return False
            found = True
            continue
        marker = id(current)
        if marker in visited:
            continue
        visited.add(marker)
        stack.extend(current.args)  # a boolean connective App
    return found


class _SubSession:
    """One shared converter + solver (optionally with an EUF theory)."""

    __slots__ = ("converter", "solver", "propagator", "queries")

    def __init__(self, theory: bool) -> None:
        self.converter = TseitinConverter()
        self.solver = WatchedSolver()
        self.propagator = (
            EqualityPropagator(self.converter.table) if theory else None
        )
        self.queries = 0

    def activate(self, formula: Term) -> Tuple[int, int]:
        """Convert ``formula`` into the shared database behind a fresh
        activation literal; returns ``(activation, retirement_mark)``."""
        clauses, root = self.converter.convert(formula)
        solver = self.solver
        for clause in clauses:
            solver.add_clause(clause)
        activation = self.converter.table.fresh()
        mark = solver.clause_mark()
        solver.add_clause((root, -activation))
        if self.propagator is not None:
            # New VCs may introduce new equality atoms: rescan the shared
            # table and (re-)attach so the solver notes the new variables.
            self.propagator.rescan()
            solver.attach_theory(self.propagator)
        self.queries += 1
        return activation, mark


class SolverSession:
    """Shared incremental solving for the VCs of one verification run.

    The two entry points mirror the module-level fast paths of
    :func:`repro.smt.solver.check_validity` and return the same verdicts
    (``propositionally_valid`` → bool; ``euf_valid`` → True/False/None),
    but amortize conversion and search state across calls.  A session is
    single-threaded and cheap to construct; create one per verification
    run (or per worker process) and pass it to ``check_validity``.
    """

    __slots__ = ("_skeleton", "_euf", "max_models", "models_blocked", "fallbacks")

    def __init__(self, max_models: int = 10_000) -> None:
        self._skeleton = _SubSession(theory=False)
        self._euf = _SubSession(theory=True)
        self.max_models = max_models
        self.models_blocked = 0
        #: Queries outside the EUF fragment, served by a one-shot solver.
        self.fallbacks = 0

    # -- fast paths -------------------------------------------------------

    def propositionally_valid(self, term: Term) -> bool:
        """Shared-solver counterpart of :func:`repro.smt.dpll.
        propositionally_valid` (atoms opaque)."""
        negated = App("not", (term,))
        sub = self._skeleton
        activation, mark = sub.activate(negated)
        try:
            model = sub.solver.solve([activation])
        finally:
            sub.solver.retire(activation, since=mark)
        return model is None

    def euf_valid(self, term: Term) -> Optional[bool]:
        """Shared-solver counterpart of :func:`repro.smt.dpll.euf_valid`:
        True/False for formulas in the ground-equality fragment, None if
        undecided; out-of-fragment formulas keep the one-shot lazy path.
        """
        if not in_euf_fragment(term):
            self.fallbacks += 1
            return euf_valid(term, max_models=self.max_models)
        negated = App("not", (term,))
        sub = self._euf
        activation, mark = sub.activate(negated)
        solver = sub.solver
        table = sub.converter.table
        try:
            for _ in range(self.max_models):
                model = solver.solve([activation])
                if model is None:
                    return True  # negation unsatisfiable: valid
                split = _theory_literals(model, table)
                if split is None:  # unreachable: the shared table is pure
                    return None
                equalities, disequalities = split
                if congruence_closure_consistent(equalities, disequalities):
                    return False  # a genuine theory countermodel
                # Block the theory-inconsistent boolean model.  The
                # blocking clause states that this atom conjunction is
                # theory-inconsistent — a theory lemma, globally sound,
                # so it is added unguarded and survives retirement.
                blocking = tuple(
                    -index if value else index
                    for index, value in sorted(model.items())
                    if table.term_of(index) is not None
                )
                if not blocking:
                    return True
                solver.add_clause(blocking)
                self.models_blocked += 1
            return None  # model budget exhausted: undecided
        finally:
            solver.retire(activation, since=mark)

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and tests."""
        skeleton, euf = self._skeleton, self._euf
        return {
            "queries": skeleton.queries + euf.queries,
            "skeleton_queries": skeleton.queries,
            "euf_queries": euf.queries,
            "fallbacks": self.fallbacks,
            "models_blocked": self.models_blocked,
            "definition_hits": (
                skeleton.converter.definition_hits + euf.converter.definition_hits
            ),
            "learned_clauses": (
                skeleton.solver.learned_clauses + euf.solver.learned_clauses
            ),
            "retired_clauses": (
                skeleton.solver.retired_clauses + euf.solver.retired_clauses
            ),
            "live_clauses": (
                len(skeleton.solver.live_clauses()) + len(euf.solver.live_clauses())
            ),
        }
