"""Incremental solver sessions: one shared CDCL solver per verification run.

A proof outline discharges many small, structurally related validity
obligations.  Before this module each obligation built a fresh
:class:`~repro.smt.dpll.WatchedSolver` (and a fresh Tseitin conversion),
throwing away learned clauses, VSIDS activities, saved phases and theory
lemmas between VCs.  A :class:`SolverSession` keeps all of that alive
across the obligations of a run, MiniSat-style:

* the session owns one :class:`~repro.smt.cnf.TseitinConverter` (shared
  atom table + definition memo) and one shared solver per fragment, so a
  subformula occurring in several VCs is converted once and its
  definition clauses are emitted once;
* each VC is *activated* by a fresh assumption literal ``a``: the VC's
  root assertion is added as the guarded clause ``(root ∨ ¬a)`` and the
  query is solved under the assumption ``a``.  Clauses learned while
  ``a`` is assumed mention ``¬a`` (no clause ever contains the positive
  literal, so resolution cannot cancel it), which keeps them valid for
  every later query;
* after the query the activation literal is *retired*
  (:meth:`~repro.smt.dpll.WatchedSolver.retire`): the guarded clause and
  every learned clause mentioning ``¬a`` are dropped, so the clause
  database stays lean while activation-independent derived facts —
  theory lemmas, blocking clauses, premise-free units, variable
  activities and phases — carry over to the next obligation.

Three sub-sessions are kept, because their soundness regimes differ: a
*skeleton* session (no theory attached) answering propositional-validity
queries over arbitrary atoms; an *EUF* session whose shared atom table
only ever contains ``==``/``!=`` atoms, with one incrementally rescanned
:class:`~repro.smt.euf.EqualityPropagator` attached; and a *mixed*
session for formulas combining equality atoms with integer
difference-logic order atoms, driven by a
:class:`~repro.smt.arith.PropagatorStack` (equality + difference logic
sharing the trail) with :func:`~repro.smt.arith.mixed_consistent` as the
model-level blocking oracle.  VCs outside all fragments fall back to the
one-shot :func:`~repro.smt.dpll.euf_valid` path, byte-for-byte
preserving the fresh-solver verdicts (the differential harness in
``tests/property/test_session_differential.py`` pins this).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .arith import (
    DifferenceLogicPropagator,
    PropagatorStack,
    is_difference_atom,
    is_offset_equality_atom,
    mixed_consistent,
)
from .cnf import TseitinConverter, is_atom
from .dpll import WatchedSolver, _theory_literals, euf_valid
from .euf import EqualityPropagator, congruence_closure_consistent, is_equality_atom
from .terms import App, Const, Term


def _iter_atoms(term: Term):
    """The theory atoms of a formula (each shared node visited once)."""
    stack = [term]
    visited: set = set()
    while stack:
        current = stack.pop()
        if isinstance(current, Const):
            continue
        if is_atom(current):
            yield current
            continue
        marker = id(current)
        if marker in visited:
            continue
        visited.add(marker)
        stack.extend(current.args)  # a boolean connective App


def _fragment_scan(term: Term, accept) -> bool:
    """True iff every atom satisfies ``accept`` and at least one occurs."""
    found = False
    for atom in _iter_atoms(term):
        if not accept(atom):
            return False
        found = True
    return found


def in_euf_fragment(term: Term) -> bool:
    """True iff every atom of the term is a binary ``==``/``!=`` atom and
    at least one atom occurs — the fragment the shared EUF sub-session
    may accept without poisoning its propagator's atom table."""
    return _fragment_scan(term, is_equality_atom)


def in_mixed_fragment(term: Term) -> bool:
    """True iff every atom is an equality atom or a difference-logic
    order atom (and at least one atom occurs) — the fragment the shared
    mixed sub-session decides with the equality + difference-logic
    propagator stack."""
    return _fragment_scan(
        term, lambda atom: is_equality_atom(atom) or is_difference_atom(atom)
    )


def _has_offset_equality(term: Term) -> bool:
    """True iff some atom is an integer equality with an offset —
    difference content invisible to congruence closure alone."""
    return any(is_offset_equality_atom(atom) for atom in _iter_atoms(term))


class _SubSession:
    """One shared converter + solver (optionally with attached theories)."""

    __slots__ = ("converter", "solver", "propagator", "queries", "focus_vars")

    def __init__(self, theory: bool, orders: bool = False) -> None:
        self.converter = TseitinConverter()
        self.solver = WatchedSolver()
        if not theory:
            self.propagator = None
        elif orders:
            self.propagator = PropagatorStack(
                EqualityPropagator(self.converter.table),
                DifferenceLogicPropagator(self.converter.table),
            )
        else:
            self.propagator = EqualityPropagator(self.converter.table)
        self.queries = 0
        #: Atom vars of the currently activated query (set by activate).
        self.focus_vars: set = set()

    def activate(self, formula: Term) -> Tuple[int, int]:
        """Convert ``formula`` into the shared database behind a fresh
        activation literal; returns ``(activation, retirement_mark)``."""
        solver = self.solver
        # Stream definition clauses straight into the solver's clause
        # arena — no intermediate clause list.
        root = self.converter.convert_into(formula, solver.add_clause)
        activation = self.converter.table.fresh()
        mark = solver.clause_mark()
        solver.add_clause((root, -activation))
        if self.propagator is not None:
            # New VCs may introduce new theory atoms: rescan the shared
            # table and (re-)attach so the solver notes the new
            # variables, then *focus* the propagators on this query's
            # own atoms — stale atoms from retired queries would
            # otherwise tax every propagation fixpoint of every later
            # query (the shared table only grows).
            self.propagator.rescan()
            table = self.converter.table
            self.focus_vars = {
                table.atom(atom) for atom in _iter_atoms(formula)
            }
            self.propagator.focus(self.focus_vars)
            solver.attach_theory(self.propagator)
        self.queries += 1
        return activation, mark


class SolverSession:
    """Shared incremental solving for the VCs of one verification run.

    The two entry points mirror the module-level fast paths of
    :func:`repro.smt.solver.check_validity` and return the same verdicts
    (``propositionally_valid`` → bool; ``theory_valid`` → True/False/
    None), but amortize conversion and search state across calls.  A
    session is single-threaded and cheap to construct; create one per
    verification run (or per worker process) and pass it to
    ``check_validity``.
    """

    __slots__ = (
        "_skeleton", "_euf", "_mixed", "max_models", "models_blocked", "fallbacks"
    )

    def __init__(self, max_models: int = 10_000) -> None:
        self._skeleton = _SubSession(theory=False)
        self._euf = _SubSession(theory=True)
        self._mixed = _SubSession(theory=True, orders=True)
        self.max_models = max_models
        self.models_blocked = 0
        #: Queries outside every fragment, served by a one-shot solver.
        self.fallbacks = 0

    # -- fast paths -------------------------------------------------------

    def propositionally_valid(self, term: Term) -> bool:
        """Shared-solver counterpart of :func:`repro.smt.dpll.
        propositionally_valid` (atoms opaque)."""
        negated = App("not", (term,))
        sub = self._skeleton
        activation, mark = sub.activate(negated)
        try:
            model = sub.solver.solve([activation])
        finally:
            sub.solver.retire(activation, since=mark)
        return model is None

    def theory_valid(self, term: Term, allow_orders: bool = True) -> Optional[bool]:
        """Shared-solver counterpart of :func:`repro.smt.dpll.euf_valid`:
        True/False for formulas in the ground-equality or mixed
        equality/difference-logic fragments, None if undecided;
        out-of-fragment formulas keep the one-shot lazy path.

        ``allow_orders=False`` disables the mixed sub-session for this
        query (callers whose sort overrides reinterpret integer-labelled
        variables must not let difference-logic reasoning touch them).
        """
        if in_euf_fragment(term):
            if allow_orders and _has_offset_equality(term):
                # Offset equalities (x == y + 1) need the difference
                # propagator even with no order atom in sight.
                return self._theory_query(self._mixed, term, mixed=True)
            return self._theory_query(self._euf, term, mixed=False)
        if allow_orders and in_mixed_fragment(term):
            return self._theory_query(self._mixed, term, mixed=True)
        self.fallbacks += 1
        return euf_valid(
            term, max_models=self.max_models, allow_orders=allow_orders
        )

    #: Backwards-compatible name from the pure-EUF session era.
    euf_valid = theory_valid

    def _theory_query(
        self, sub: _SubSession, term: Term, mixed: bool
    ) -> Optional[bool]:
        negated = App("not", (term,))
        activation, mark = sub.activate(negated)
        solver = sub.solver
        table = sub.converter.table
        focus = sub.focus_vars
        try:
            for _ in range(self.max_models):
                model = solver.solve([activation])
                if model is None:
                    return True  # negation unsatisfiable: valid
                # The query's truth depends only on its *own* atoms
                # (definitions are shared, so shared subformulas' atoms
                # are in the focus set too).  Stale atoms pulled into
                # the shrunk model by clauses of retired queries are
                # dropped before the theory check: a consistent focused
                # assignment is a genuine countermodel, an inconsistent
                # one yields a blocking lemma over focused atoms only —
                # which blocks every stale-atom variation at once
                # instead of re-blocking an exponential stale space.
                focused = {
                    index: value
                    for index, value in model.items()
                    if index in focus
                }
                split = _theory_literals(focused, table, orders=mixed)
                if split is None:  # unreachable: the shared table is pure
                    return None
                if mixed:
                    equalities, disequalities, order_atoms = split
                    consistent = mixed_consistent(
                        equalities, disequalities, order_atoms
                    )
                else:
                    equalities, disequalities = split
                    consistent = congruence_closure_consistent(
                        equalities, disequalities
                    )
                if consistent:
                    # A countermodel the theory check cannot refute —
                    # genuine on the pure fragments (their checks are
                    # complete); on the mixed fragment possibly an
                    # over-approximation, in which case the caller's
                    # enumeration fallback keeps the verdict sound.
                    return False
                # Block the theory-inconsistent boolean model.  The
                # blocking clause states that this atom conjunction is
                # theory-inconsistent — a theory lemma, globally sound,
                # so it is added unguarded and survives retirement.
                blocking = tuple(
                    -index if value else index
                    for index, value in sorted(focused.items())
                    if table.term_of(index) is not None
                )
                if not blocking:
                    return True
                solver.add_clause(blocking)
                self.models_blocked += 1
            return None  # model budget exhausted: undecided
        finally:
            solver.retire(activation, since=mark)

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and tests."""
        subs = (self._skeleton, self._euf, self._mixed)
        mixed_propagator = self._mixed.propagator
        return {
            "queries": sum(sub.queries for sub in subs),
            "skeleton_queries": self._skeleton.queries,
            "euf_queries": self._euf.queries,
            "mixed_queries": self._mixed.queries,
            "fallbacks": self.fallbacks,
            "models_blocked": self.models_blocked,
            "theory_propagations": mixed_propagator.propagations
            + self._euf.propagator.propagations,
            "theory_conflicts": mixed_propagator.conflicts
            + self._euf.propagator.conflicts,
            "definition_hits": sum(
                sub.converter.definition_hits for sub in subs
            ),
            "learned_clauses": sum(sub.solver.learned_clauses for sub in subs),
            "retired_clauses": sum(sub.solver.retired_clauses for sub in subs),
            "live_clauses": sum(
                db["live_input"] + db["live_learned"]
                for db in (sub.solver.clause_db_stats() for sub in subs)
            ),
            "reduced_clauses": sum(sub.solver.reduced_clauses for sub in subs),
            "db_reductions": sum(sub.solver.reductions for sub in subs),
            "db_compactions": sum(sub.solver.compactions for sub in subs),
            "minimized_literals": sum(
                sub.solver.minimized_literals for sub in subs
            ),
        }


# ---------------------------------------------------------------------------
# Session pooling (the daemon's warm-state keeper)
# ---------------------------------------------------------------------------

#: An eviction hook: ``hook(tenant, session, reason)``.
EvictionHook = Callable[[str, SolverSession, str], None]


class SessionPool:
    """A keyed pool of warm :class:`SolverSession` instances.

    The verification daemon keeps one session per *tenant* so that a
    tenant's successive batches reuse learned clauses, Tseitin
    definitions, VSIDS activities and theory lemmas, while tenants never
    share a clause database (their sort overrides and atom tables could
    otherwise poison each other's propagators).

    Eviction keeps the pool bounded along two axes:

    * **LRU** — at most ``max_sessions`` live sessions; acquiring a new
      tenant beyond that evicts the least-recently-used one;
    * **bloat** — :meth:`release` retires a session whose accumulated
      live clause count exceeds ``max_live_clauses`` (clause databases
      only shrink via :meth:`~repro.smt.dpll.WatchedSolver.retire`, so a
      long-lived pathological tenant is cut off rather than slowing
      every later query).

    Hooks registered with :meth:`on_evict` observe every eviction with
    its reason (``"lru"``, ``"bloat"``, ``"retired"``, ``"explicit"``) —
    the server uses this to log and to surface eviction counts in served
    stats.  A pool is single-threaded, like the sessions it holds.
    """

    __slots__ = (
        "max_sessions",
        "max_live_clauses",
        "_factory",
        "_sessions",
        "_hooks",
        "created",
        "reused",
        "evicted",
        "retired",
    )

    def __init__(
        self,
        max_sessions: int = 8,
        max_live_clauses: Optional[int] = None,
        factory: Optional[Callable[[], SolverSession]] = None,
    ) -> None:
        self.max_sessions = max(1, max_sessions)
        self.max_live_clauses = max_live_clauses
        self._factory = factory if factory is not None else SolverSession
        self._sessions: "OrderedDict[str, SolverSession]" = OrderedDict()
        self._hooks: List[EvictionHook] = []
        self.created = 0
        self.reused = 0
        self.evicted = 0
        self.retired = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._sessions

    def on_evict(self, hook: EvictionHook) -> EvictionHook:
        """Register an eviction observer; returns it (decorator-friendly)."""
        self._hooks.append(hook)
        return hook

    def acquire(
        self,
        tenant: str = "default",
        factory: Optional[Callable[[], SolverSession]] = None,
    ) -> SolverSession:
        """The tenant's warm session, created on first acquire (with
        ``factory`` when given — per-tenant solver configuration).  Marks
        the session most-recently-used; may LRU-evict another tenant."""
        session = self._sessions.get(tenant)
        if session is not None:
            self._sessions.move_to_end(tenant)
            self.reused += 1
            return session
        session = (factory or self._factory)()
        self._sessions[tenant] = session
        self.created += 1
        while len(self._sessions) > self.max_sessions:
            oldest = next(iter(self._sessions))
            self._evict(oldest, "lru")
        return session

    def release(self, tenant: str) -> bool:
        """Hand a session back after a batch.  Returns True if the
        session survived, False if the bloat bound retired it."""
        session = self._sessions.get(tenant)
        if session is None:
            return False
        if (
            self.max_live_clauses is not None
            and session.stats()["live_clauses"] > self.max_live_clauses
        ):
            self._evict(tenant, "bloat")
            return False
        return True

    def retire(self, tenant: str) -> bool:
        """Discard the tenant's session unconditionally (the daemon's
        response to a wall-clock timeout: the next acquire starts
        fresh).  Returns True if a session was discarded."""
        if tenant not in self._sessions:
            return False
        self.retired += 1
        self._evict(tenant, "retired")
        return True

    def evict(self, tenant: str) -> bool:
        """Explicitly drop one tenant's session (admin surface)."""
        if tenant not in self._sessions:
            return False
        self._evict(tenant, "explicit")
        return True

    def clear(self) -> None:
        for tenant in list(self._sessions):
            self._evict(tenant, "explicit")

    def _evict(self, tenant: str, reason: str) -> None:
        session = self._sessions.pop(tenant)
        self.evicted += 1
        for hook in self._hooks:
            hook(tenant, session, reason)

    def stats(self) -> Dict[str, object]:
        """Pool counters plus the aggregated per-tenant session stats —
        the ``sessions`` block of the daemon's served stats."""
        return {
            "sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "created": self.created,
            "reused": self.reused,
            "evicted": self.evicted,
            "retired": self.retired,
            "tenants": {
                tenant: session.stats()
                for tenant, session in self._sessions.items()
            },
        }


def merge_pool_stats(
    snapshots: Iterable[Mapping[str, object]],
    baseline: Optional[Mapping[str, int]] = None,
) -> Dict[str, object]:
    """Fold several :meth:`SessionPool.stats` snapshots (one per daemon
    worker process) into one pool-shaped view: counters sum, ``tenants``
    union (tenant-affine routing keeps tenants disjoint across workers),
    ``max_sessions`` is left for the caller (a per-worker bound, not a
    sum).  ``baseline`` pre-seeds the counters — the accumulated totals
    of workers that already died."""
    merged: Dict[str, object] = {
        "sessions": 0,
        "max_sessions": 0,
        "created": 0,
        "reused": 0,
        "evicted": 0,
        "retired": 0,
        "tenants": {},
    }
    for key, value in (baseline or {}).items():
        if key in merged and isinstance(value, int) and key != "max_sessions":
            merged[key] = merged[key] + value  # type: ignore[operator]
    for snapshot in snapshots:
        for key in ("sessions", "created", "reused", "evicted", "retired"):
            value = snapshot.get(key, 0)
            if isinstance(value, int):
                merged[key] = merged[key] + value  # type: ignore[operator]
        tenants = snapshot.get("tenants")
        if isinstance(tenants, Mapping):
            merged["tenants"].update(tenants)  # type: ignore[union-attr]
    return merged
