"""Inference of preconditions and abstractions for resource specifications.

The paper's related work points to automatic inference of commutativity
conditions (Bansal et al. 2018) and notes that the same data structure can
carry different abstractions for different uses (Sec. 6).  This module
automates two specification-authoring steps on top of the Def. 3.1
validity checker:

* :func:`infer_preconditions` — given a specification's actions and
  abstraction, search the lattice of candidate relational preconditions
  (built from "this projection of the argument is low" atoms) for the
  *weakest* ones that make the specification valid.  This answers "which
  argument parts must be low?" — e.g. for the key-set map abstraction it
  discovers that only the key needs to be low (Fig. 4 left), and for the
  identity abstraction that even full lowness cannot repair same-key puts.

* :func:`infer_abstraction` — given actions (with their declared
  preconditions), test a catalogue of standard abstractions (identity,
  multiset/sorted view, length, sum, key set, constant, ...) and return
  the valid ones ordered from *finest* to coarsest, where precision is
  measured by how many value pairs of the domain the abstraction
  distinguishes.  The finest valid abstraction is the most informative
  public view the data structure can expose without a value channel —
  the quantity the paper's examples pick by hand (Table 1's
  "Abstraction" column).

Both searches enumerate candidates and delegate every judgment to
:func:`repro.spec.validity.check_validity`, so inferred results carry the
same bounded-soundness status as hand-written specifications.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Tuple

from ..heap.multiset import Multiset
from ..lang.values import PMap
from .actions import Action
from .resource import ResourceSpecification
from .validity import ValidityReport, check_validity

Projection = Tuple[str, Callable[[Any], Any]]


# ---------------------------------------------------------------------------
# Candidate projections
# ---------------------------------------------------------------------------


def _is_pair(value: Any) -> bool:
    return isinstance(value, tuple) and len(value) == 2


def candidate_projections(arg_domain: Sequence[Any]) -> Tuple[Projection, ...]:
    """Projection atoms applicable to the given argument domain.

    Scalars offer only the identity ("the whole argument is low"); pairs
    additionally offer their components (Fig. 4's ``Low(key)`` /
    ``Low(val)``).
    """
    projections: list[Projection] = [("arg", lambda arg: arg)]
    if all(_is_pair(arg) for arg in arg_domain) and arg_domain:
        projections = [
            ("fst", lambda arg: arg[0]),
            ("snd", lambda arg: arg[1]),
        ]
    return tuple(projections)


@dataclass(frozen=True)
class InferredPrecondition:
    """A sufficient precondition found for one action."""

    action: str
    low_projections: Tuple[str, ...]

    def __str__(self) -> str:
        if not self.low_projections:
            return f"{self.action}: no lowness required"
        atoms = " ∧ ".join(f"Low({name})" for name in self.low_projections)
        return f"{self.action}: {atoms}"


@dataclass(frozen=True)
class PreconditionInference:
    """Result of the precondition search."""

    spec_name: str
    found: bool
    preconditions: Tuple[InferredPrecondition, ...]
    candidates_tried: int
    report: Optional[ValidityReport] = None

    def projection_names(self, action: str) -> Tuple[str, ...]:
        for entry in self.preconditions:
            if entry.action == action:
                return entry.low_projections
        raise KeyError(action)


def _with_projections(
    spec: ResourceSpecification,
    assignment: Mapping[str, Tuple[Projection, ...]],
) -> ResourceSpecification:
    """The specification with each action's low projections replaced."""
    new_actions = tuple(
        replace(
            action,
            low_projections=tuple(assignment[action.name]),
            relational_requires=None,
        )
        for action in spec.actions
    )
    return replace(spec, actions=new_actions)


def _projection_candidate_task(
    payload: Tuple[ResourceSpecification, Mapping[str, Tuple[Projection, ...]]],
) -> ValidityReport:
    """Module-level task wrapper so process-pool workers can import it."""
    spec, assignment = payload
    return check_validity(_with_projections(spec, assignment))


def infer_preconditions(
    spec: ResourceSpecification, jobs: int = 1
) -> PreconditionInference:
    """Find weakest low-projection preconditions that validate ``spec``.

    Keeps each action's ``unary_requires`` (a per-execution constraint
    like "key in my range") and searches over which projections must be
    low.  Candidates are explored from weakest (nothing low) to strongest
    (everything low); the first valid assignment in that order is
    returned, preferring fewer and smaller atoms.

    With ``jobs > 1`` candidates are judged in parallel batches over a
    process pool (:func:`repro.parallel.first_in_order`); the returned
    assignment is identical to the sequential search (the first valid
    candidate in ranked order) — only ``candidates_tried`` may overshoot
    by up to one batch, since a batch is judged as a unit.
    """
    per_action: dict[str, Tuple[Tuple[Projection, ...], ...]] = {}
    for action in spec.actions:
        atoms = candidate_projections(spec.arg_domain(action.name))
        subsets: list[Tuple[Projection, ...]] = []
        for size in range(len(atoms) + 1):
            subsets.extend(itertools.combinations(atoms, size))
        per_action[action.name] = tuple(subsets)

    action_names = [action.name for action in spec.actions]
    assignments = itertools.product(*(per_action[name] for name in action_names))
    # Sort candidate tuples by total strength so the weakest valid
    # assignment is found first.
    ranked = sorted(assignments, key=lambda combo: sum(len(subset) for subset in combo))
    payloads = [(spec, dict(zip(action_names, combo))) for combo in ranked]
    from ..parallel import first_in_order

    index, report, tried = first_in_order(
        _projection_candidate_task,
        payloads,
        accept=lambda candidate_report: candidate_report.valid,
        jobs=jobs,
    )
    if index is not None:
        assignment = payloads[index][1]
        inferred = tuple(
            InferredPrecondition(name, tuple(atom_name for atom_name, _ in assignment[name]))
            for name in action_names
        )
        return PreconditionInference(spec.name, True, inferred, tried, report)
    return PreconditionInference(spec.name, False, (), tried, None)


# ---------------------------------------------------------------------------
# Abstraction inference
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateAbstraction:
    """A named abstraction function for the catalogue."""

    name: str
    function: Callable[[Any], Any]

    def __repr__(self) -> str:
        return f"CandidateAbstraction({self.name!r})"


def _sum_of(value: Any) -> Any:
    return sum(value)


def _mean_of(value: Any) -> Any:
    # Mean as an exact pair (sum, len) to stay in integer arithmetic.
    return (sum(value), len(value)) if value else (0, 0)


STANDARD_ABSTRACTIONS: Tuple[CandidateAbstraction, ...] = (
    CandidateAbstraction("identity", lambda value: value),
    CandidateAbstraction("multiset", lambda value: Multiset(value)),
    CandidateAbstraction("sorted", lambda value: tuple(sorted(value, key=repr))),
    CandidateAbstraction("set", lambda value: frozenset(value)),
    CandidateAbstraction("length", len),
    CandidateAbstraction("sum", _sum_of),
    CandidateAbstraction("mean", _mean_of),
    CandidateAbstraction("keyset", lambda value: value.keys()),
    CandidateAbstraction("constant", lambda value: 0),
)


def _applicable(candidate: CandidateAbstraction, domain: Sequence[Any]) -> bool:
    """An abstraction applies if it evaluates and is hashable on the
    whole value domain."""
    try:
        for value in domain:
            hash(candidate.function(value))
    except Exception:
        return False
    return True


def precision(function: Callable[[Any], Any], domain: Sequence[Any]) -> int:
    """How many value pairs of the domain the abstraction distinguishes.

    The identity tops this measure; the constant abstraction bottoms it at
    zero.  This induces the finest-to-coarsest ordering used to rank
    valid abstractions.
    """
    count = 0
    for value1, value2 in itertools.combinations(domain, 2):
        if function(value1) != function(value2):
            count += 1
    return count


@dataclass(frozen=True)
class AbstractionInference:
    """Valid abstractions for a specification, finest first."""

    spec_name: str
    valid: Tuple[CandidateAbstraction, ...]
    invalid: Tuple[CandidateAbstraction, ...]
    candidates_tried: int

    @property
    def finest(self) -> Optional[CandidateAbstraction]:
        return self.valid[0] if self.valid else None

    def names(self) -> Tuple[str, ...]:
        return tuple(candidate.name for candidate in self.valid)


def _abstraction_candidate_task(
    payload: Tuple[ResourceSpecification, Callable[[Any], Any]],
) -> ValidityReport:
    """Module-level task wrapper so process-pool workers can import it."""
    spec, function = payload
    return check_validity(replace(spec, abstraction=function))


def infer_abstraction(
    spec: ResourceSpecification,
    candidates: Sequence[CandidateAbstraction] = STANDARD_ABSTRACTIONS,
    jobs: int = 1,
) -> AbstractionInference:
    """Which catalogue abstractions make ``spec``'s actions valid?

    Returns the applicable, valid candidates ordered finest first (by
    :func:`precision` on the value domain); invalid-but-applicable
    candidates are reported too (they witness why a coarser view is
    needed — e.g. identity fails for same-key map puts, Fig. 3).

    The candidate judgments are independent, so with ``jobs > 1`` they
    fan out over a process pool (falling back to in-process checking
    when a candidate's callables cannot be pickled)."""
    applicable = [
        candidate
        for candidate in candidates
        if _applicable(candidate, spec.value_domain)
    ]
    from ..parallel import parallel_map

    reports = parallel_map(
        _abstraction_candidate_task,
        [(spec, candidate.function) for candidate in applicable],
        jobs=jobs,
    )
    valid: list[CandidateAbstraction] = []
    invalid: list[CandidateAbstraction] = []
    for candidate, report in zip(applicable, reports):
        if report.valid:
            valid.append(candidate)
        else:
            invalid.append(candidate)
    valid.sort(key=lambda c: precision(c.function, spec.value_domain), reverse=True)
    return AbstractionInference(
        spec.name, tuple(valid), tuple(invalid), len(applicable)
    )
