"""Actions of a resource specification (Sec. 3.2).

An action ``a`` consists of a total function ``f_a : T → T_arg → T`` on the
pure resource value and a *relational precondition* ``pre_a`` on pairs of
arguments (one from each of the two executions being compared).

Most preconditions in the paper have the shape "these projections of the
argument are low (equal in both executions), and each argument satisfies
this unary constraint" (e.g. Fig. 4 right: ``Low(key) ∧ Low(val) ∧ key ∈
range_i``).  :class:`Action` therefore takes:

* ``low_projections`` — named functions of the argument whose results
  must be *equal across the two executions*;
* ``unary_requires`` — a per-execution predicate on the argument;
* ``relational_requires`` — an escape hatch for fully general relational
  preconditions.

The derived relational precondition is the conjunction of all three.
Keeping the low projections structured (rather than folding everything
into an opaque ``pre(arg1, arg2)``) is what lets the automated verifier
discharge property (3a) with a taint analysis, and lets ``PRE`` bijections
be decided with bipartite matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Tuple


class ActionKind(Enum):
    SHARED = "shared"
    UNIQUE = "unique"


def _identity(arg: Any) -> Any:
    return arg


@dataclass(frozen=True)
class Action:
    """An action of a resource specification.

    ``apply(value, arg)`` must be a *total* function of the resource value
    (App. D explains why partial actions are unsound); totalize with ghost
    state if the natural definition is partial.
    """

    name: str
    kind: ActionKind
    apply: Callable[[Any, Any], Any]
    low_projections: Tuple[Tuple[str, Callable[[Any], Any]], ...] = ()
    unary_requires: Optional[Callable[[Any], bool]] = None
    relational_requires: Optional[Callable[[Any, Any], bool]] = None

    @classmethod
    def shared(
        cls,
        name: str,
        apply: Callable[[Any, Any], Any],
        low_projections: Tuple[Tuple[str, Callable[[Any], Any]], ...] = (),
        unary_requires: Optional[Callable[[Any], bool]] = None,
        relational_requires: Optional[Callable[[Any, Any], bool]] = None,
    ) -> "Action":
        return cls(name, ActionKind.SHARED, apply, low_projections, unary_requires, relational_requires)

    @classmethod
    def unique(
        cls,
        name: str,
        apply: Callable[[Any, Any], Any],
        low_projections: Tuple[Tuple[str, Callable[[Any], Any]], ...] = (),
        unary_requires: Optional[Callable[[Any], bool]] = None,
        relational_requires: Optional[Callable[[Any, Any], bool]] = None,
    ) -> "Action":
        return cls(name, ActionKind.UNIQUE, apply, low_projections, unary_requires, relational_requires)

    @property
    def is_shared(self) -> bool:
        return self.kind == ActionKind.SHARED

    @property
    def is_unique(self) -> bool:
        return self.kind == ActionKind.UNIQUE

    def precondition(self, arg1: Any, arg2: Any) -> bool:
        """The relational precondition ``pre_a(arg1, arg2)``."""
        for _, projection in self.low_projections:
            if projection(arg1) != projection(arg2):
                return False
        if self.unary_requires is not None:
            if not (self.unary_requires(arg1) and self.unary_requires(arg2)):
                return False
        if self.relational_requires is not None:
            if not self.relational_requires(arg1, arg2):
                return False
        return True

    def unary_precondition(self, arg: Any) -> bool:
        """The diagonal ``pre_a(arg, arg)`` — what one execution can check."""
        return self.precondition(arg, arg)

    def __repr__(self) -> str:
        return f"Action({self.name!r}, {self.kind.value})"


def low_everything() -> Tuple[Tuple[str, Callable[[Any], Any]], ...]:
    """The projection tuple requiring the whole argument to be low."""
    return (("arg", _identity),)


def low_first() -> Tuple[Tuple[str, Callable[[Any], Any]], ...]:
    """Require the first component of a pair argument to be low."""
    return (("fst", lambda arg: arg[0]),)


def low_pair() -> Tuple[Tuple[str, Callable[[Any], Any]], ...]:
    """Require both components of a pair argument to be low."""
    return (("fst", lambda arg: arg[0]), ("snd", lambda arg: arg[1]))
