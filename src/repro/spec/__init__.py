"""Resource specifications, validity (abstract commutativity), catalogue."""

from .actions import Action, ActionKind, low_everything, low_first, low_pair
from .consistency import (
    abstractions_of_interleavings,
    is_consistent,
    lemma_4_2_holds,
    reachable_values,
)
from .inference import (
    AbstractionInference,
    CandidateAbstraction,
    InferredPrecondition,
    PreconditionInference,
    STANDARD_ABSTRACTIONS,
    candidate_projections,
    infer_abstraction,
    infer_preconditions,
    precision,
)
from .resource import ResourceContext, ResourceSpecification, merge_shared
from .validity import (
    Counterexample,
    ValidityReport,
    check_condition_a,
    check_condition_b,
    check_validity,
    fuzz_validity,
)
from . import library

__all__ = [
    "AbstractionInference",
    "Action",
    "ActionKind",
    "CandidateAbstraction",
    "Counterexample",
    "InferredPrecondition",
    "PreconditionInference",
    "STANDARD_ABSTRACTIONS",
    "candidate_projections",
    "infer_abstraction",
    "infer_preconditions",
    "precision",
    "ResourceContext",
    "ResourceSpecification",
    "ValidityReport",
    "abstractions_of_interleavings",
    "check_condition_a",
    "check_condition_b",
    "check_validity",
    "fuzz_validity",
    "is_consistent",
    "lemma_4_2_holds",
    "library",
    "low_everything",
    "low_first",
    "low_pair",
    "merge_shared",
    "reachable_values",
]
