"""Consistency (Sec. 3.5) and the key soundness lemma (Lemma 4.2), executable.

*Consistency* connects guard states to the resource value: a value ``v``
is consistent with initial value ``v0``, shared argument multiset
``args_s``, and unique argument sequences ``args_i`` iff some interleaving
of the corresponding action applications maps ``v0`` to ``v`` (unique
sequences keep their internal order; the shared multiset may be applied in
any order and interleaved arbitrarily).

*Lemma 4.2* states that for a valid specification, any two consistent
final values whose recorded arguments are related by the PRE conditions
have equal abstractions.  :func:`abstractions_of_interleavings` lets tests
verify this lemma by brute force on small instances.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Optional, Sequence, Tuple

from ..heap.multiset import Multiset
from .resource import ResourceSpecification


def reachable_values(
    spec: ResourceSpecification,
    initial: Any,
    shared_args: Multiset | Iterable[Any] = (),
    unique_args: Optional[dict[str, Sequence[Any]]] = None,
) -> frozenset:
    """All final values reachable by interleaving the recorded actions.

    The shared action's arguments may be applied in any order (all
    permutations of the multiset); each unique action's arguments must be
    applied in their recorded sequence order; and the streams interleave
    arbitrarily.  Exponential — for small recorded histories only.
    """
    shared = spec.shared_action
    if not isinstance(shared_args, Multiset):
        shared_args = Multiset(shared_args)
    if shared_args and shared is None:
        raise ValueError(f"{spec.name} has no shared action but shared args were recorded")
    unique_args = unique_args or {}
    streams: list[tuple[Any, ...]] = []  # each stream: ordered (action, arg) list
    for name, args in unique_args.items():
        action = spec.action(name)
        if not action.is_unique:
            raise ValueError(f"{name} is not a unique action of {spec.name}")
        if args:
            streams.append(tuple((action, arg) for arg in args))

    results: set = set()
    shared_elements = tuple(shared_args.elements())
    seen_orders: set = set()
    for order in itertools.permutations(shared_elements):
        if order in seen_orders:
            continue
        seen_orders.add(order)
        shared_stream = tuple((shared, arg) for arg in order)
        all_streams = [stream for stream in streams]
        if shared_stream:
            all_streams.append(shared_stream)
        for interleaving in _interleavings(all_streams):
            value = initial
            for action, arg in interleaving:
                value = action.apply(value, arg)
            results.add(value)
        if not all_streams:
            results.add(initial)
    return frozenset(results)


def _interleavings(streams: Sequence[tuple]) -> Iterator[tuple]:
    """All interleavings of the given ordered streams."""
    if not streams:
        yield ()
        return
    total = sum(len(stream) for stream in streams)
    if total == 0:
        yield ()
        return

    def recurse(positions: tuple[int, ...]) -> Iterator[tuple]:
        if all(position == len(stream) for position, stream in zip(positions, streams)):
            yield ()
            return
        for index, (position, stream) in enumerate(zip(positions, streams)):
            if position < len(stream):
                advanced = positions[:index] + (position + 1,) + positions[index + 1 :]
                head = stream[position]
                for rest in recurse(advanced):
                    yield (head,) + rest

    yield from recurse(tuple(0 for _ in streams))


def is_consistent(
    spec: ResourceSpecification,
    value: Any,
    initial: Any,
    shared_args: Multiset | Iterable[Any] = (),
    unique_args: Optional[dict[str, Sequence[Any]]] = None,
) -> bool:
    """Sec. 3.5 consistency: is ``value`` reachable from ``initial``?"""
    return value in reachable_values(spec, initial, shared_args, unique_args)


def abstractions_of_interleavings(
    spec: ResourceSpecification,
    initial: Any,
    shared_args: Multiset | Iterable[Any] = (),
    unique_args: Optional[dict[str, Sequence[Any]]] = None,
) -> frozenset:
    """The set of abstract views over all interleavings.

    For a valid specification this set is a *singleton* whenever the
    recorded histories satisfy the PRE conditions (this is the heart of
    Lemma 4.2 with both executions sharing one history); tests use it to
    validate the lemma by enumeration.
    """
    values = reachable_values(spec, initial, shared_args, unique_args)
    return frozenset(spec.abstraction(value) for value in values)


def lemma_4_2_holds(
    spec: ResourceSpecification,
    initial1: Any,
    initial2: Any,
    shared_args1: Iterable[Any],
    shared_args2: Iterable[Any],
    unique_args1: Optional[dict[str, Sequence[Any]]] = None,
    unique_args2: Optional[dict[str, Sequence[Any]]] = None,
) -> bool:
    """Brute-force check of Lemma 4.2 on one instance.

    Preconditions of the lemma (equal initial abstraction, PRE-related
    histories) are assumed checked by the caller; this function verifies
    the *conclusion*: every value consistent with history 1 and every
    value consistent with history 2 have equal abstractions.
    """
    alphas1 = abstractions_of_interleavings(spec, initial1, Multiset(shared_args1), unique_args1)
    alphas2 = abstractions_of_interleavings(spec, initial2, Multiset(shared_args2), unique_args2)
    return len(alphas1 | alphas2) == 1
