"""Catalogue of resource specifications used by the evaluation (Table 1).

Each constructor returns a :class:`ResourceSpecification` with small-scope
domains suitable for the validity checker.  The catalogue covers every
data-structure/abstraction combination in Table 1:

==============================  =====================  ====================
Example                         Data structure          Abstraction
==============================  =====================  ====================
Count-Vaccinated                Counter, increment      None (identity)
Figure 2 / Count-Sick-Days      Integer, add            None
Figure 1                        Integer, arbitrary set  Constant
Mean-Salary                     List, append            Mean (sum, count)
Email-Metadata                  List, append            Multiset
Patient-Statistic               List, append            Length
Debt-Sum                        List, append            Sum
Sick-Employee-Names (treeset)   Set, add                None
Website-Visitor-IPs (listset)   Set, add                None
Figure 3                        HashMap, put            Key set
Sales-By-Region                 HashMap, disjoint put   None (unique actions)
Salary-Histogram                HashMap, increment      None
Count-Purchases                 HashMap, add value      None
Most-Valuable-Purchase          HashMap, cond. put      None
1-Producer-1-Consumer           Queue (totalized)       Produced sequence
Pipeline                        Two queues              Produced sequences
2-Producers-2-Consumers         Queue (totalized)       Produced multiset
==============================  =====================  ====================

The producer–consumer specification follows App. D / Fig. 12: the queue is
*totalized* by letting the buffer go negative (a consume-debt counter), so
produce/consume are total functions and the validity conditions apply.

The module also exposes deliberately *invalid* specifications (e.g. plain
assignment with identity abstraction, sequence abstraction with a shared
producer) used by tests and the ablation benchmark to show which designs
the validity checker rejects.
"""

from __future__ import annotations

from typing import Any, Tuple

from ..heap.multiset import Multiset
from ..lang.values import PMap
from .actions import Action, low_everything, low_first, low_pair
from .resource import ResourceSpecification

# ---------------------------------------------------------------------------
# Integer / counter specifications
# ---------------------------------------------------------------------------

_SMALL_INTS: Tuple[int, ...] = (-2, -1, 0, 1, 2, 3)


def _increment_apply(value: int, _arg: Any) -> int:
    return value + 1


def _add_apply(value: int, amount: int) -> int:
    return value + amount


def _identity_abstraction(value: Any) -> Any:
    return value


def picklable_counter_spec() -> ResourceSpecification:
    """``counter_increment_spec`` built from module-level callables.

    Everything in this specification pickles, so the process-pool
    discharge path (:mod:`repro.parallel`) can ship it to workers —
    lambda-based catalogue specs fall back to sequential checking.
    Used by the parallel-discharge tests and benchmarks.
    """
    increment = Action.shared("Inc", _increment_apply)
    return ResourceSpecification(
        name="PicklableCounterInc",
        abstraction=_identity_abstraction,
        actions=(increment,),
        initial_value=0,
        value_domain=_SMALL_INTS,
        arg_domains={"Inc": (0,)},
        description="shared counter, increment by one; picklable callables",
    )


def picklable_integer_add_spec() -> ResourceSpecification:
    """``integer_add_spec`` built from module-level callables (see
    :func:`picklable_counter_spec`)."""
    add = Action.shared("Add", _add_apply, low_projections=low_everything())
    return ResourceSpecification(
        name="PicklableIntegerAdd",
        abstraction=_identity_abstraction,
        actions=(add,),
        initial_value=0,
        value_domain=_SMALL_INTS,
        arg_domains={"Add": _SMALL_INTS},
        description="shared integer, n += low amount; picklable callables",
    )


def counter_increment_spec() -> ResourceSpecification:
    """Counter with an argument-less increment (Count-Vaccinated)."""
    increment = Action.shared("Inc", lambda value, _arg: value + 1)
    return ResourceSpecification(
        name="CounterInc",
        abstraction=lambda value: value,
        actions=(increment,),
        initial_value=0,
        value_domain=_SMALL_INTS,
        arg_domains={"Inc": (0,)},
        description="shared counter, increment by one; identity abstraction",
    )


def integer_add_spec() -> ResourceSpecification:
    """Integer with commutative add of a low amount (Fig. 2, Count-Sick-Days)."""
    add = Action.shared("Add", lambda value, amount: value + amount, low_projections=low_everything())
    return ResourceSpecification(
        name="IntegerAdd",
        abstraction=lambda value: value,
        actions=(add,),
        initial_value=0,
        value_domain=_SMALL_INTS,
        arg_domains={"Add": _SMALL_INTS},
        description="shared integer, n += low amount; identity abstraction",
    )


def assign_constant_abstraction_spec() -> ResourceSpecification:
    """Arbitrary assignment under the *constant* abstraction (Fig. 1 secure
    variant: the raced variable is never leaked, so nothing about it needs
    to commute)."""
    set_to = Action.shared("SetTo", lambda _value, new: new)
    return ResourceSpecification(
        name="AssignConstantAlpha",
        abstraction=lambda _value: 0,
        actions=(set_to,),
        initial_value=0,
        value_domain=_SMALL_INTS,
        arg_domains={"SetTo": _SMALL_INTS},
        description="arbitrary writes; constant abstraction leaks nothing",
    )


def assign_identity_abstraction_spec() -> ResourceSpecification:
    """INVALID control: arbitrary assignment with identity abstraction —
    the original Fig. 1 program, rightly rejected (writes do not commute)."""
    set_to = Action.shared("SetTo", lambda _value, new: new, low_projections=low_everything())
    return ResourceSpecification(
        name="AssignIdentityAlpha",
        abstraction=lambda value: value,
        actions=(set_to,),
        initial_value=0,
        value_domain=_SMALL_INTS,
        arg_domains={"SetTo": _SMALL_INTS},
        description="arbitrary writes; identity abstraction (INVALID)",
    )


# ---------------------------------------------------------------------------
# List-append specifications (arguments are (tag, amount) pairs where the
# tag models the secret part — a name, creditor, or email header)
# ---------------------------------------------------------------------------

_SMALL_PAIRS: Tuple[tuple, ...] = tuple(
    (tag, amount) for tag in ("x", "y") for amount in (0, 1, 2)
)
_SMALL_SEQS: Tuple[tuple, ...] = (
    (),
    (("x", 1),),
    (("y", 2),),
    (("x", 1), ("y", 2)),
    (("y", 2), ("x", 1)),
)


def _append(value: tuple, item: Any) -> tuple:
    return tuple(value) + (item,)


def list_append_mean_spec() -> ResourceSpecification:
    """List of (name, salary); only the mean salary is leaked (Mean-Salary).

    The abstraction returns the exact pair (sum, count) — the mean without
    rational arithmetic.  Only the *salary* component must be low; the name
    may be secret.
    """
    append = Action.shared(
        "Append",
        _append,
        low_projections=(("salary", lambda item: item[1]),),
    )
    return ResourceSpecification(
        name="ListMean",
        abstraction=lambda value: (sum(item[1] for item in value), len(value)),
        actions=(append,),
        initial_value=(),
        value_domain=_SMALL_SEQS,
        arg_domains={"Append": _SMALL_PAIRS},
        description="append (name, salary); α = (sum, count) of salaries",
    )


def list_append_multiset_spec() -> ResourceSpecification:
    """List whose multiset view is leaked after sorting (Email-Metadata)."""
    append = Action.shared("Append", _append, low_projections=low_everything())
    return ResourceSpecification(
        name="ListMultiset",
        abstraction=lambda value: Multiset(value),
        actions=(append,),
        initial_value=(),
        value_domain=_SMALL_SEQS,
        arg_domains={"Append": _SMALL_PAIRS},
        description="append low items; α = multiset (order hidden)",
    )


def list_append_length_spec() -> ResourceSpecification:
    """List of secret records; only the count is leaked (Patient-Statistic).

    No lowness requirement on the appended item at all — the abstraction
    only counts.
    """
    append = Action.shared("Append", _append)
    return ResourceSpecification(
        name="ListLength",
        abstraction=len,
        actions=(append,),
        initial_value=(),
        value_domain=_SMALL_SEQS,
        arg_domains={"Append": _SMALL_PAIRS},
        description="append anything (may be high); α = length",
    )


def list_append_sum_spec() -> ResourceSpecification:
    """List of (creditor, amount); only the total is leaked (Debt-Sum)."""
    append = Action.shared(
        "Append",
        _append,
        low_projections=(("amount", lambda item: item[1]),),
    )
    return ResourceSpecification(
        name="ListSum",
        abstraction=lambda value: sum(item[1] for item in value),
        actions=(append,),
        initial_value=(),
        value_domain=_SMALL_SEQS,
        arg_domains={"Append": _SMALL_PAIRS},
        description="append (creditor, amount); α = sum of amounts",
    )


def list_append_sequence_spec() -> ResourceSpecification:
    """INVALID control: appends with the *sequence* (identity) abstraction —
    concurrent appends do not commute on the concrete list."""
    append = Action.shared("Append", _append, low_projections=low_everything())
    return ResourceSpecification(
        name="ListSequence",
        abstraction=lambda value: value,
        actions=(append,),
        initial_value=(),
        value_domain=_SMALL_SEQS,
        arg_domains={"Append": _SMALL_PAIRS},
        description="append; identity abstraction (INVALID)",
    )


# ---------------------------------------------------------------------------
# Set specifications
# ---------------------------------------------------------------------------

_SMALL_SETS: Tuple[frozenset, ...] = (
    frozenset(),
    frozenset({1}),
    frozenset({2}),
    frozenset({1, 2}),
)


def set_add_spec() -> ResourceSpecification:
    """Insert low elements into a set (Sick-Employee-Names /
    Website-Visitor-IPs — the same spec serves both implementations,
    demonstrating the reuse point of Sec. 5 'Resource specifications')."""
    add = Action.shared("SetAdd", lambda value, item: value | {item}, low_projections=low_everything())
    return ResourceSpecification(
        name="SetAdd",
        abstraction=lambda value: value,
        actions=(add,),
        initial_value=frozenset(),
        value_domain=_SMALL_SETS,
        arg_domains={"SetAdd": (1, 2, 3)},
        description="set insertion of low elements; identity abstraction",
    )


# ---------------------------------------------------------------------------
# Map specifications
# ---------------------------------------------------------------------------

_SMALL_MAPS: Tuple[PMap, ...] = (
    PMap(),
    PMap({1: 10}),
    PMap({1: 20}),
    PMap({2: 10}),
    PMap({1: 10, 2: 20}),
)
_KEY_VALUE_ARGS: Tuple[tuple, ...] = tuple((key, value) for key in (1, 2) for value in (10, 20))


def map_put_keyset_spec() -> ResourceSpecification:
    """Map put with the key-set abstraction (Fig. 3 / Fig. 4 left):
    only the key must be low; the value may be secret."""
    put = Action.shared(
        "Put",
        lambda mapping, item: mapping.put(item[0], item[1]),
        low_projections=low_first(),
    )
    return ResourceSpecification(
        name="MapKeySet",
        abstraction=lambda mapping: mapping.keys(),
        actions=(put,),
        initial_value=PMap(),
        value_domain=_SMALL_MAPS,
        arg_domains={"Put": _KEY_VALUE_ARGS},
        description="put (low key, any value); α = dom (Fig. 4 left)",
    )


def map_put_identity_spec() -> ResourceSpecification:
    """INVALID control: map put with identity abstraction — two puts to the
    same key with different values do not commute (the Fig. 3 discussion)."""
    put = Action.shared(
        "Put",
        lambda mapping, item: mapping.put(item[0], item[1]),
        low_projections=low_pair(),
    )
    return ResourceSpecification(
        name="MapIdentity",
        abstraction=lambda mapping: mapping,
        actions=(put,),
        initial_value=PMap(),
        value_domain=_SMALL_MAPS,
        arg_domains={"Put": _KEY_VALUE_ARGS},
        description="put; identity abstraction (INVALID: same-key overwrite)",
    )


def map_disjoint_put_spec(ranges: Tuple[frozenset, ...] = (frozenset({1}), frozenset({2}))) -> ResourceSpecification:
    """Fig. 4 (right) / Sales-By-Region: one *unique* put action per thread,
    each restricted to its own key range; identity abstraction."""
    actions = []
    arg_domains = {}
    for index, key_range in enumerate(ranges, start=1):
        name = f"Put{index}"
        actions.append(
            Action.unique(
                name,
                lambda mapping, item: mapping.put(item[0], item[1]),
                low_projections=low_pair(),
                unary_requires=(lambda key_range: lambda item: item[0] in key_range)(key_range),
            )
        )
        arg_domains[name] = tuple((key, value) for key in sorted(key_range) for value in (10, 20))
    return ResourceSpecification(
        name="MapDisjointPut",
        abstraction=lambda mapping: mapping,
        actions=tuple(actions),
        initial_value=PMap(),
        value_domain=_SMALL_MAPS,
        arg_domains=arg_domains,
        description="unique per-thread puts in disjoint key ranges; α = id (Fig. 4 right)",
    )


def map_histogram_spec() -> ResourceSpecification:
    """Salary-Histogram: each put increments the count stored under a low
    bucket key; increments commute even on the same key."""
    increment = Action.shared(
        "IncBucket",
        lambda mapping, key: mapping.put(key, mapping.get(key, 0) + 1),
        low_projections=low_everything(),
    )
    return ResourceSpecification(
        name="MapHistogram",
        abstraction=lambda mapping: mapping,
        actions=(increment,),
        initial_value=PMap(),
        value_domain=_SMALL_MAPS,
        arg_domains={"IncBucket": (1, 2)},
        description="histogram: m[k] += 1 on low bucket keys; α = id",
    )


def map_add_value_spec() -> ResourceSpecification:
    """Count-Purchases: add a low amount to the value under a low key."""
    add_value = Action.shared(
        "AddVal",
        lambda mapping, item: mapping.put(item[0], mapping.get(item[0], 0) + item[1]),
        low_projections=low_pair(),
    )
    return ResourceSpecification(
        name="MapAddValue",
        abstraction=lambda mapping: mapping,
        actions=(add_value,),
        initial_value=PMap(),
        value_domain=_SMALL_MAPS,
        arg_domains={"AddVal": _KEY_VALUE_ARGS},
        description="m[k] += low amount; α = id",
    )


def map_put_if_greater_spec() -> ResourceSpecification:
    """Most-Valuable-Purchase: conditional put keeping the maximum value."""

    def put_if_greater(mapping: PMap, item: tuple) -> PMap:
        key, value = item
        current = mapping.get(key, None)
        if current is None or value > current:
            return mapping.put(key, value)
        return mapping

    put = Action.shared("PutMax", put_if_greater, low_projections=low_pair())
    return ResourceSpecification(
        name="MapPutMax",
        abstraction=lambda mapping: mapping,
        actions=(put,),
        initial_value=PMap(),
        value_domain=_SMALL_MAPS,
        arg_domains={"PutMax": _KEY_VALUE_ARGS},
        description="conditional put keeping max; α = id",
    )


# ---------------------------------------------------------------------------
# Producer–consumer queues (App. D / Fig. 12)
# ---------------------------------------------------------------------------
#
# Resource value: (buffer, produced) where
#   buffer   — tuple of queued items, or a negative int (consume debt),
#   produced — tuple of all values produced so far (ghost state).
# Both actions are total (the App. D totalization): consuming from an
# empty queue pushes the buffer to -1, -2, ...; producing while in debt
# pays off one unit of debt.


def _queue_produce(value: tuple, item: Any) -> tuple:
    buffer, produced = value
    produced = produced + (item,)
    if isinstance(buffer, int):
        # buffer is a negative debt counter (Left(-n) in Fig. 12)
        if buffer == -1:
            return ((), produced)
        return (buffer + 1, produced)
    return (buffer + (item,), produced)


def _queue_consume(value: tuple, _arg: Any) -> tuple:
    buffer, produced = value
    if isinstance(buffer, int):
        return (buffer - 1, produced)
    if buffer == ():
        return (-1, produced)
    return (buffer[1:], produced)


_QUEUE_VALUES: Tuple[tuple, ...] = (
    ((), ()),
    ((1,), (1,)),
    ((1, 2), (1, 2)),
    ((2,), (1, 2)),
    ((), (1, 2)),
    (-1, (1,)),
    (-2, ()),
)


def producer_consumer_spec(
    producers: int = 1,
    consumers: int = 1,
    suffix: str = "",
) -> ResourceSpecification:
    """The totalized queue specification (Fig. 12), parameterized by role
    multiplicity.

    * With one producer and one consumer, both actions are *unique* and the
      abstraction may be the produced *sequence* (order and all) — hence
      the consumed sequence, a prefix of it, is low (Table 1 row
      "1-Producer-1-Consumer").
    * With multiple producers or consumers, the corresponding action must
      be shared, and only the *multiset* view of production is low (row
      "2-Producers-2-Consumers") — the sequence abstraction is invalid,
      which :mod:`repro.spec.validity` demonstrates.

    ``suffix`` is appended to the action names (``Prod1``/``Cons1``), so a
    program can use several queue resources (the Pipeline example) without
    ambiguous action names.
    """
    if producers < 1 or consumers < 1:
        raise ValueError("need at least one producer and one consumer")
    multi = producers > 1 or consumers > 1
    prod_name = "Prod" + suffix
    cons_name = "Cons" + suffix
    if multi:
        abstraction = lambda value: Multiset(value[1])  # noqa: E731
        produce = Action.shared(prod_name, _queue_produce, low_projections=low_everything())
        consume = Action.unique(cons_name, _queue_consume) if consumers == 1 else None
        if consumers > 1:
            # both roles shared: merge consume into the shared action space
            # by making consume a second *unique-free* operation; the paper
            # merges multiple shared actions into one (Sec. 3.2), which
            # merge_shared implements — here we tag arguments instead.
            def tagged_apply(value: tuple, tagged: tuple) -> tuple:
                tag, arg = tagged
                if tag == "prod":
                    return _queue_produce(value, arg)
                return _queue_consume(value, arg)

            # The merged action's precondition requires the whole tagged
            # argument to be low: produce arguments must match exactly and
            # consume tags trivially do.  (Slightly stronger than the
            # minimal relational precondition, but statically checkable.)
            op_name = "Op" + suffix
            merged = Action.shared(op_name, tagged_apply, low_projections=low_everything())
            return ResourceSpecification(
                name=f"Queue{producers}P{consumers}C{suffix}",
                abstraction=abstraction,
                actions=(merged,),
                initial_value=((), ()),
                value_domain=_QUEUE_VALUES,
                arg_domains={op_name: (("prod", 1), ("prod", 2), ("cons", 0))},
                description="totalized queue; shared prod+cons; α = produced multiset",
            )
        actions = (produce, consume)
        arg_domains = {prod_name: (1, 2), cons_name: (0,)}
    else:
        abstraction = lambda value: value[1]  # noqa: E731 — produced sequence
        produce = Action.unique(prod_name, _queue_produce, low_projections=low_everything())
        consume = Action.unique(cons_name, _queue_consume)
        actions = (produce, consume)
        arg_domains = {prod_name: (1, 2), cons_name: (0,)}
    return ResourceSpecification(
        name=f"Queue{producers}P{consumers}C{suffix}",
        abstraction=abstraction,
        actions=actions,
        initial_value=((), ()),
        value_domain=_QUEUE_VALUES,
        arg_domains=arg_domains,
        description="totalized queue (Fig. 12); α = produced "
        + ("multiset" if multi else "sequence"),
    )


def multi_producer_sequence_spec() -> ResourceSpecification:
    """INVALID control: two producers with the *sequence* abstraction —
    production order is scheduler-dependent, so this must be rejected
    (the App. D discussion and Fig. 11)."""
    produce = Action.shared("Prod", _queue_produce, low_projections=low_everything())
    consume = Action.unique("Cons", _queue_consume)
    return ResourceSpecification(
        name="QueueSeqAlphaInvalid",
        abstraction=lambda value: value[1],
        actions=(produce, consume),
        initial_value=((), ()),
        value_domain=_QUEUE_VALUES,
        arg_domains={"Prod": (1, 2), "Cons": (0,)},
        description="shared producer with sequence abstraction (INVALID)",
    )


# ---------------------------------------------------------------------------
# Object-language bindings for queue operations
# ---------------------------------------------------------------------------
#
# Atomic bodies in the case studies implement queue actions with these pure
# functions; registering them makes them callable from program text.

from ..lang.values import PURE_FUNCTIONS  # noqa: E402


def _queue_size(value: tuple) -> int:
    buffer, _ = value
    if isinstance(buffer, int):
        return buffer  # negative debt
    return len(buffer)


def _queue_head(value: tuple) -> object:
    buffer, _ = value
    if isinstance(buffer, int) or not buffer:
        return 0
    return buffer[0]


PURE_FUNCTIONS.setdefault("emptyQueue", lambda: ((), ()))
PURE_FUNCTIONS.setdefault("qProduce", _queue_produce)
PURE_FUNCTIONS.setdefault("qConsume", _queue_consume)
PURE_FUNCTIONS.setdefault("qSize", _queue_size)
PURE_FUNCTIONS.setdefault("qHead", _queue_head)
PURE_FUNCTIONS.setdefault("producedSeq", lambda value: value[1])
PURE_FUNCTIONS.setdefault("producedMs", lambda value: Multiset(value[1]))
PURE_FUNCTIONS.setdefault("producedSorted", lambda value: tuple(sorted(value[1])))
PURE_FUNCTIONS.setdefault("meanStats", lambda value: (sum(item[1] for item in value), len(value)))
PURE_FUNCTIONS.setdefault("debtSum", lambda value: sum(item[1] for item in value))
PURE_FUNCTIONS.setdefault("seqLen", len)
PURE_FUNCTIONS.setdefault("seqMultiset", lambda value: Multiset(value))


# ---------------------------------------------------------------------------
# Value-dependent sensitivity (Sec. 3.4)
# ---------------------------------------------------------------------------

_VDEP_PAIRS: Tuple[tuple, ...] = tuple(
    (flag, value) for flag in (False, True) for value in (10, 20)
)
_VDEP_SEQS: Tuple[tuple, ...] = (
    (),
    ((True, 10),),
    ((False, 20),),
    ((True, 10), (False, 20)),
    ((False, 10), (True, 20)),
)


def value_dependent_list_spec() -> ResourceSpecification:
    """List of (is_public, value) pairs with value-dependent sensitivity.

    The paper's Sec. 3.4 example: "a data structure might contain pairs of
    booleans and other values, where the boolean expresses the sensitivity
    of the other value".  The flag must be low; the value must be low
    *only when the flag says public* — the relational precondition is the
    implication ``Low(flag) ∧ (flag ⇒ Low(value))``.  The abstraction is
    the multiset of public values (plus the total count, which the flags
    make low), so the sorted public values may be released while secret
    entries stay protected.
    """

    def relational(arg1: tuple, arg2: tuple) -> bool:
        flag1, value1 = arg1
        flag2, value2 = arg2
        if flag1 != flag2:
            return False  # Low(flag)
        if flag1 and value1 != value2:
            return False  # flag ⇒ Low(value)
        return True

    append = Action.shared(
        "AppendLabelled",
        _append,
        relational_requires=relational,
    )
    return ResourceSpecification(
        name="ValueDepList",
        abstraction=lambda value: (
            Multiset(item for item in value if item[0]),
            len(value),
        ),
        actions=(append,),
        initial_value=(),
        value_domain=_VDEP_SEQS,
        arg_domains={"AppendLabelled": _VDEP_PAIRS},
        description="append (is_public, value); pre = Low(flag) ∧ (flag ⇒ Low(value)); "
        "α = (multiset of public values, count)",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

VALID_SPECS = {
    "ValueDepList": value_dependent_list_spec,
    "CounterInc": counter_increment_spec,
    "IntegerAdd": integer_add_spec,
    "AssignConstantAlpha": assign_constant_abstraction_spec,
    "ListMean": list_append_mean_spec,
    "ListMultiset": list_append_multiset_spec,
    "ListLength": list_append_length_spec,
    "ListSum": list_append_sum_spec,
    "SetAdd": set_add_spec,
    "MapKeySet": map_put_keyset_spec,
    "MapDisjointPut": map_disjoint_put_spec,
    "MapHistogram": map_histogram_spec,
    "MapAddValue": map_add_value_spec,
    "MapPutMax": map_put_if_greater_spec,
    "Queue1P1C": producer_consumer_spec,
    "Queue2P2C": lambda: producer_consumer_spec(2, 2),
}

INVALID_SPECS = {
    "AssignIdentityAlpha": assign_identity_abstraction_spec,
    "ListSequence": list_append_sequence_spec,
    "MapIdentity": map_put_identity_spec,
    "QueueSeqAlphaInvalid": multi_producer_sequence_spec,
}
