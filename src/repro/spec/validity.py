"""Resource specification validity (Def. 3.1).

A specification ``⟨α, f_as, F_au⟩`` is *valid* iff

(A) every action's relational precondition preserves low-ness of the
    abstract view:  ``α(v) = α(v') ∧ pre_a(arg, arg')  ⟹
    α(f_a(v, arg)) = α(f_a(v', arg'))``;

(B) all relevant pairs of actions commute modulo the abstraction, even
    from two *different* start values with equal abstraction:
    ``α(v) = α(v')  ⟹  α(f_a'(f_a(v, x), y)) = α(f_a(f_a'(v', y), x))``.
    Relevant pairs: (shared, shared), (shared, unique_i), and
    (unique_i, unique_j) for i ≠ j — unique actions need not commute with
    themselves (Sec. 2.7).

HyperViper discharges these conditions with Z3; we discharge them by
exhaustive enumeration over the specification's declared small-scope
domains, optionally extended by randomized search.  A returned
counterexample is always genuine (it is re-checked by evaluation); a PASS
is a bounded guarantee, like an SMT check under quantifier instantiation
limits.
"""

from __future__ import annotations

import itertools
import random
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Tuple

from ..smt.intern import register_cache
from .actions import Action
from .resource import ResourceSpecification

#: Identity-keyed memo of Def. 3.1 reports.  The enumeration is pure in
#: the (frozen) specification, so a spec that stays alive — every
#: catalogue entry, every pooled daemon tenant — pays for its validity
#: check once per process instead of once per request.  Entries hold a
#: weakref so a collected spec frees its report (and a recycled ``id``
#: can never alias: the stored ref is checked against the live object).
_REPORT_MEMO: dict = register_cache({})


@dataclass(frozen=True)
class Counterexample:
    """A concrete witness that a validity condition fails."""

    condition: str  # 'A' or 'B'
    action: str
    other_action: Optional[str]
    values: Tuple[Any, ...]
    args: Tuple[Any, ...]
    detail: str

    def __str__(self) -> str:
        return (
            f"condition ({self.condition}) fails for {self.action}"
            + (f"/{self.other_action}" if self.other_action else "")
            + f": values={self.values!r} args={self.args!r} — {self.detail}"
        )


@dataclass(frozen=True)
class ValidityReport:
    """Outcome of checking Def. 3.1 on a specification."""

    spec_name: str
    valid: bool
    counterexamples: Tuple[Counterexample, ...]
    checks_performed: int

    def __bool__(self) -> bool:
        return self.valid


def _alpha_groups(spec: ResourceSpecification) -> list[list[Any]]:
    """Group the value domain into classes with equal abstraction."""
    groups: dict[Any, list[Any]] = {}
    for value in spec.value_domain:
        groups.setdefault(spec.abstraction(value), []).append(value)
    return list(groups.values())


def check_condition_a(
    spec: ResourceSpecification,
    stop_at_first: bool = True,
) -> Tuple[list[Counterexample], int]:
    """Check Def. 3.1 (A) over the declared domains.

    The comparison is quadratic in the domains, but each compared side
    depends only on one (value, argument) pair, so ``α(f_a(v, x))`` is
    computed lazily once per pair and memoized (index-keyed, so domains
    may contain unhashable values).  Iteration order, check counts and
    the first counterexample are identical to the direct nested loops.
    """
    alpha = spec.abstraction
    counterexamples: list[Counterexample] = []
    checks = 0
    groups = _alpha_groups(spec)
    for action in spec.actions:
        args = list(spec.arg_domain(action.name))
        arg_pairs = [
            (j1, j2)
            for (j1, arg1), (j2, arg2) in itertools.product(enumerate(args), repeat=2)
            if action.precondition(arg1, arg2)
        ]
        apply_action = action.apply
        for group in groups:
            memo: dict[Tuple[int, int], Any] = {}

            def outcome(i: int, j: int, _group=group, _memo=memo) -> Any:
                key = (i, j)
                try:
                    return _memo[key]
                except KeyError:
                    result = alpha(apply_action(_group[i], args[j]))
                    _memo[key] = result
                    return result

            for (i1, value1), (i2, value2) in itertools.product(
                enumerate(group), repeat=2
            ):
                for j1, j2 in arg_pairs:
                    checks += 1
                    result1 = outcome(i1, j1)
                    result2 = outcome(i2, j2)
                    if result1 != result2:
                        counterexamples.append(
                            Counterexample(
                                condition="A",
                                action=action.name,
                                other_action=None,
                                values=(value1, value2),
                                args=(args[j1], args[j2]),
                                detail=f"abstractions diverge: {result1!r} vs {result2!r}",
                            )
                        )
                        if stop_at_first:
                            return counterexamples, checks
    return counterexamples, checks


def check_condition_b(
    spec: ResourceSpecification,
    stop_at_first: bool = True,
) -> Tuple[list[Counterexample], int]:
    """Check Def. 3.1 (B) — abstract commutativity — over the domains."""
    alpha = spec.abstraction
    counterexamples: list[Counterexample] = []
    checks = 0
    groups = _alpha_groups(spec)
    for first, second in spec.commuting_pairs():
        first_args = list(spec.arg_domain(first.name))
        second_args = list(spec.arg_domain(second.name))
        arg_index_pairs = list(
            itertools.product(range(len(first_args)), range(len(second_args)))
        )
        for group in groups:
            # Each side of the commutation equation depends on one start
            # value and the two arguments; memoize per (value, args) so the
            # quadratic value1 × value2 comparison reuses applications.
            left_memo: dict[Tuple[int, int, int], Any] = {}
            right_memo: dict[Tuple[int, int, int], Any] = {}

            def left_of(i: int, jf: int, js: int, _group=group, _memo=left_memo) -> Any:
                key = (i, jf, js)
                try:
                    return _memo[key]
                except KeyError:
                    result = alpha(
                        second.apply(first.apply(_group[i], first_args[jf]), second_args[js])
                    )
                    _memo[key] = result
                    return result

            def right_of(i: int, jf: int, js: int, _group=group, _memo=right_memo) -> Any:
                key = (i, jf, js)
                try:
                    return _memo[key]
                except KeyError:
                    result = alpha(
                        first.apply(second.apply(_group[i], second_args[js]), first_args[jf])
                    )
                    _memo[key] = result
                    return result

            for (i1, value1), (i2, value2) in itertools.product(
                enumerate(group), repeat=2
            ):
                for jf, js in arg_index_pairs:
                    arg_first = first_args[jf]
                    arg_second = second_args[js]
                    checks += 1
                    left = left_of(i1, jf, js)
                    right = right_of(i2, jf, js)
                    if left != right:
                        counterexamples.append(
                            Counterexample(
                                condition="B",
                                action=first.name,
                                other_action=second.name,
                                values=(value1, value2),
                                args=(arg_first, arg_second),
                                detail=f"order matters modulo α: {left!r} vs {right!r}",
                            )
                        )
                        if stop_at_first:
                            return counterexamples, checks
    return counterexamples, checks


def check_validity(
    spec: ResourceSpecification,
    stop_at_first: bool = True,
) -> ValidityReport:
    """Check Def. 3.1 (A) and (B) on the specification's domains."""
    if stop_at_first:
        entry = _REPORT_MEMO.get(id(spec))
        if entry is not None and entry[0]() is spec:
            return entry[1]
    ce_a, checks_a = check_condition_a(spec, stop_at_first)
    if ce_a and stop_at_first:
        report = ValidityReport(spec.name, False, tuple(ce_a), checks_a)
    else:
        ce_b, checks_b = check_condition_b(spec, stop_at_first)
        all_ce = tuple(ce_a + ce_b)
        report = ValidityReport(spec.name, not all_ce, all_ce, checks_a + checks_b)
    if stop_at_first:
        try:
            # Bind the memo as a default: at interpreter shutdown the
            # module global may already be None when late GC fires this.
            ref = weakref.ref(
                spec, lambda _ref, key=id(spec), memo=_REPORT_MEMO: memo.pop(key, None)
            )
        except TypeError:
            pass
        else:
            _REPORT_MEMO[id(spec)] = (ref, report)
    return report


def _spec_report_task(spec: ResourceSpecification) -> ValidityReport:
    """Module-level task wrapper so process-pool workers can import it."""
    return check_validity(spec)


def check_validity_batch(
    specs: Iterable[ResourceSpecification],
    jobs: int = 1,
) -> list[ValidityReport]:
    """Def. 3.1 reports for several *independent* specifications.

    With ``jobs > 1`` the checks fan out over a process pool
    (:func:`repro.parallel.parallel_map`); specifications whose callables
    cannot be pickled (lambda abstractions and action bodies) silently
    fall back to in-process sequential checking, so the reports are
    identical either way.  Order follows the input order.
    """
    specs = list(specs)
    if jobs <= 1 or len(specs) <= 1:
        return [check_validity(spec) for spec in specs]
    from ..parallel import parallel_map

    return parallel_map(_spec_report_task, specs, jobs=jobs)


def fuzz_validity(
    spec: ResourceSpecification,
    value_gen: Callable[[random.Random], Any],
    arg_gens: dict[str, Callable[[random.Random], Any]],
    iterations: int = 2_000,
    seed: int = 0,
) -> ValidityReport:
    """Randomized validity search beyond the declared domains.

    ``value_gen`` draws resource values and ``arg_gens[name]`` draws
    arguments for each action; a discovered counterexample is returned
    exactly as from :func:`check_validity`.
    """
    rng = random.Random(seed)
    alpha = spec.abstraction
    counterexamples: list[Counterexample] = []
    checks = 0
    pairs = list(spec.commuting_pairs())
    for _ in range(iterations):
        checks += 1
        # Condition (A) probe: same value (so abstractions trivially equal)
        # plus a precondition-respecting argument pair.
        action = rng.choice(spec.actions)
        value = value_gen(rng)
        arg1 = arg_gens[action.name](rng)
        arg2 = arg_gens[action.name](rng)
        if action.precondition(arg1, arg2):
            if alpha(action.apply(value, arg1)) != alpha(action.apply(value, arg2)):
                counterexamples.append(
                    Counterexample("A", action.name, None, (value, value), (arg1, arg2), "fuzz")
                )
                break
        # Condition (B) probe.
        if pairs:
            first, second = rng.choice(pairs)
            value = value_gen(rng)
            arg_first = arg_gens[first.name](rng)
            arg_second = arg_gens[second.name](rng)
            left = alpha(second.apply(first.apply(value, arg_first), arg_second))
            right = alpha(first.apply(second.apply(value, arg_second), arg_first))
            if left != right:
                counterexamples.append(
                    Counterexample("B", first.name, second.name, (value, value), (arg_first, arg_second), "fuzz")
                )
                break
    return ValidityReport(spec.name, not counterexamples, tuple(counterexamples), checks)
