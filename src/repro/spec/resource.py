"""Resource specifications and resource contexts (Sec. 3.2, 3.5, Fig. 4).

A resource specification ``⟨α, f_as, F_au⟩`` bundles:

* an abstraction function ``α : T → T_α`` selecting the information that
  is allowed to become public,
* at most one *shared* action (the paper merges multiple shared actions
  into one whose argument selects the operation; :func:`merge_shared`
  implements exactly that construction), and
* a family of *unique* actions indexed by name.

For checkability the specification also carries small-scope *domains*:
generators of representative resource values and action arguments used by
the validity checker (:mod:`repro.spec.validity`) — this is the role
Z3's symbolic domains play in HyperViper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Tuple

from .actions import Action, ActionKind


@dataclass(frozen=True)
class ResourceSpecification:
    """``⟨α, f_as, F_au⟩`` plus checkability metadata.

    ``value_domain`` yields representative resource values; per-action
    argument domains live in ``arg_domains`` (keyed by action name).
    Domains should be small (tens of values) — the validity checker
    enumerates pairs and triples over them.
    """

    name: str
    abstraction: Callable[[Any], Any]
    actions: Tuple[Action, ...]
    initial_value: Any
    value_domain: Tuple[Any, ...]
    arg_domains: Mapping[str, Tuple[Any, ...]]
    description: str = ""

    def __post_init__(self) -> None:
        shared = [action for action in self.actions if action.is_shared]
        if len(shared) > 1:
            raise ValueError(
                f"{self.name}: at most one shared action (merge with merge_shared); got "
                f"{[action.name for action in shared]}"
            )
        names = [action.name for action in self.actions]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate action names in {names}")
        for action in self.actions:
            if action.name not in self.arg_domains:
                raise ValueError(f"{self.name}: no argument domain for action {action.name!r}")

    # -- lookups -----------------------------------------------------------

    def action(self, name: str) -> Action:
        for action in self.actions:
            if action.name == name:
                return action
        raise KeyError(f"{self.name}: no action named {name!r}")

    @property
    def shared_action(self) -> Optional[Action]:
        for action in self.actions:
            if action.is_shared:
                return action
        return None

    @property
    def unique_actions(self) -> Tuple[Action, ...]:
        return tuple(action for action in self.actions if action.is_unique)

    def arg_domain(self, name: str) -> Tuple[Any, ...]:
        return tuple(self.arg_domains[name])

    # -- Def. 3.1 relevant pairs ---------------------------------------------

    def commuting_pairs(self) -> Iterable[Tuple[Action, Action]]:
        """The pairs that must abstractly commute (Def. 3.1 (B)):
        (shared, shared), (shared, unique_i), (unique_i, unique_j) for i≠j."""
        shared = self.shared_action
        uniques = self.unique_actions
        if shared is not None:
            yield shared, shared
            for unique in uniques:
                yield shared, unique
        for i, first in enumerate(uniques):
            for j, second in enumerate(uniques):
                if i != j:
                    yield first, second

    def __repr__(self) -> str:
        return f"ResourceSpecification({self.name!r}, actions={[a.name for a in self.actions]})"


def merge_shared(
    name: str,
    abstraction: Callable[[Any], Any],
    shared_actions: Sequence[Action],
    initial_value: Any,
    value_domain: Tuple[Any, ...],
    arg_domains: Mapping[str, Tuple[Any, ...]],
    unique_actions: Sequence[Action] = (),
    description: str = "",
) -> ResourceSpecification:
    """Merge several shared actions into one whose argument is a tagged
    pair ``(action_name, arg)`` — the construction of Sec. 3.2 footnote.

    The merged precondition dispatches on the tag and additionally
    requires the tag itself to be low (two executions must match the same
    operation kind, which is what the per-action PRE bijections would
    enforce for separate actions).
    """
    by_name = {action.name: action for action in shared_actions}
    if len(by_name) != len(shared_actions):
        raise ValueError("duplicate shared action names")

    def merged_apply(value: Any, tagged: Tuple[str, Any]) -> Any:
        tag, arg = tagged
        return by_name[tag].apply(value, arg)

    def merged_relational(tagged1: Tuple[str, Any], tagged2: Tuple[str, Any]) -> bool:
        tag1, arg1 = tagged1
        tag2, arg2 = tagged2
        if tag1 != tag2:
            return False
        return by_name[tag1].precondition(arg1, arg2)

    merged_domain = tuple(
        (action.name, arg) for action in shared_actions for arg in arg_domains[action.name]
    )
    merged = Action.shared(name + "Op", merged_apply, relational_requires=merged_relational)
    domains = {merged.name: merged_domain}
    for action in unique_actions:
        domains[action.name] = tuple(arg_domains[action.name])
    return ResourceSpecification(
        name=name,
        abstraction=abstraction,
        actions=(merged, *unique_actions),
        initial_value=initial_value,
        value_domain=value_domain,
        arg_domains=domains,
        description=description,
    )


@dataclass(frozen=True)
class ResourceContext:
    """``Γ = ⟨α, f_as, F_au, I(x)⟩`` — a specification plus the invariant.

    The invariant is represented by the heap location holding the pure
    resource value (our ``I(v)`` is ``location ↦ v``, the canonical
    points-to invariant; richer invariants live in :mod:`repro.logic`).
    """

    spec: ResourceSpecification
    location_var: str

    def __repr__(self) -> str:
        return f"ResourceContext({self.spec.name!r} at [{self.location_var}])"
