"""Empirical non-interference checking (Def. 2.1).

The property: for any two terminating executions — under *any* schedules —
whose low inputs agree, the low outputs agree.  This module checks it two
ways:

* :func:`check_exhaustive` — enumerate **all** interleavings of a (small)
  instance for each high-input variant and compare the full set of
  reachable low outputs.  Sound and complete for the instance.
* :func:`check_sampled` — run many seeded-random and round-robin schedules
  across high-input variants; a difference in low outputs is a genuine
  counterexample (a *witness* of a value channel), agreement is evidence.

The verifier's frontend uses these as the retroactive discharge mechanism
for obligations (Sec. 2.5's "check when unsharing"), and the test suite
uses them as the executable counterpart of the Isabelle soundness theorem:
whatever the verifier accepts must pass these checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from ..lang.ast import Command
from ..lang.interpreter import run
from ..lang.scheduler import RandomScheduler, RoundRobinScheduler, enumerate_executions
from ..lang.semantics import ABORT, Config, State

Observation = tuple  # the program's public output trace

ObserveFn = Callable[[tuple], tuple]


def observation(trace: tuple, low_channels: Optional[frozenset]) -> tuple:
    """Project an output trace to the channels an attacker observes.

    Default-channel prints appear as plain values (channel ``"out"``);
    other channels as ``(channel, value)`` pairs.  ``low_channels`` of
    ``None`` observes everything (the paper's single public output)."""
    if low_channels is None:
        return trace
    result = []
    for entry in trace:
        if isinstance(entry, tuple) and len(entry) == 2 and isinstance(entry[0], str):
            if entry[0] in low_channels:
                result.append(entry)
        elif "out" in low_channels:
            result.append(entry)
    return tuple(result)


def channel_observer(low_channels: Optional[frozenset]) -> ObserveFn:
    """An observation function for :func:`check_noninterference`."""

    def observe(trace: tuple) -> tuple:
        return observation(trace, low_channels)

    return observe


@dataclass(frozen=True)
class Witness:
    """A concrete non-interference violation."""

    inputs1: dict
    inputs2: dict
    output1: Observation
    output2: Observation
    detail: str

    def __str__(self) -> str:
        return (
            f"non-interference violated: inputs {self.inputs1!r} vs {self.inputs2!r} "
            f"gave outputs {self.output1!r} vs {self.output2!r} ({self.detail})"
        )


@dataclass(frozen=True)
class NIReport:
    secure: bool
    witness: Optional[Witness]
    executions_checked: int

    def __bool__(self) -> bool:
        return self.secure


def all_outputs(program: Command, inputs: dict, max_steps: int = 200_000) -> frozenset:
    """The set of output traces over *all* interleavings (exhaustive)."""
    outputs: set = set()
    initial = Config(program, State.make(dict(inputs)))
    for final in enumerate_executions(initial, max_steps=max_steps):
        if final == ABORT:
            raise RuntimeError(f"program aborts on inputs {inputs!r}")
        outputs.add(final.state.output)
    return frozenset(outputs)


def check_exhaustive(
    program: Command,
    input_variants: Sequence[dict],
    max_steps: int = 200_000,
    observe: Optional[ObserveFn] = None,
) -> NIReport:
    """Exhaustive Def. 2.1 check over input variants with equal low parts.

    ``input_variants`` are full input stores agreeing on low inputs and
    differing in high inputs.  Secure iff the union of all reachable
    outputs across all variants is a single trace.  ``observe`` projects
    traces to the attacker-visible part (default: everything).
    """
    observe = observe or (lambda trace: trace)
    seen: dict[Observation, dict] = {}
    checked = 0
    for inputs in input_variants:
        outputs = {observe(output) for output in all_outputs(program, inputs, max_steps)}
        checked += len(outputs)
        for output in outputs:
            if output not in seen:
                seen[output] = inputs
    if len(seen) <= 1:
        return NIReport(True, None, checked)
    traces = sorted(seen.items(), key=lambda item: repr(item[0]))
    (out1, in1), (out2, in2) = traces[0], traces[1]
    return NIReport(False, Witness(in1, in2, out1, out2, "exhaustive enumeration"), checked)


def check_sampled(
    program: Command,
    input_variants: Sequence[dict],
    schedules: int = 25,
    seed: int = 0,
    max_steps: int = 1_000_000,
    observe: Optional[ObserveFn] = None,
) -> NIReport:
    """Randomized Def. 2.1 check: many schedulers per input variant."""
    observe = observe or (lambda trace: trace)
    reference: Optional[Observation] = None
    reference_inputs: Optional[dict] = None
    checked = 0
    for inputs in input_variants:
        schedulers: list = [RoundRobinScheduler()]
        schedulers.extend(RandomScheduler(seed + index) for index in range(schedules))
        for scheduler in schedulers:
            result = run(program, dict(inputs), scheduler=scheduler, max_steps=max_steps)
            checked += 1
            visible = observe(result.output)
            if reference is None:
                reference = visible
                reference_inputs = inputs
            elif visible != reference:
                witness = Witness(
                    reference_inputs or {},
                    inputs,
                    reference,
                    visible,
                    f"sampled schedules (seed base {seed})",
                )
                return NIReport(False, witness, checked)
    return NIReport(True, None, checked)


def check_noninterference(
    program: Command,
    instances: Iterable[Sequence[dict]],
    exhaustive: bool = False,
    schedules: int = 25,
    seed: int = 0,
    observe: Optional[ObserveFn] = None,
) -> NIReport:
    """Check several instances (each a list of input variants with equal
    low inputs); secure iff every instance is secure."""
    total = 0
    for variants in instances:
        if exhaustive:
            report = check_exhaustive(program, variants, observe=observe)
        else:
            report = check_sampled(program, variants, schedules=schedules, seed=seed, observe=observe)
        total += report.executions_checked
        if not report.secure:
            return NIReport(False, report.witness, total)
    return NIReport(True, None, total)
