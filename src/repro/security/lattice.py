"""Finite security lattices (Sec. 2.1, footnote 1).

The paper limits its presentation to two labels, high and low, and notes:
"techniques for verifying information flow security with two levels can
be used to verify programs with arbitrary finite lattices by performing
the verification multiple times, once for every element of the lattice."
This module implements exactly that reduction:

* :class:`Lattice` — a finite lattice given by its elements and covering
  relation (Hasse diagram); construction verifies that every pair has a
  join and a meet;
* standard lattices: :func:`two_point`, :func:`linear`, :func:`diamond`,
  :func:`powerset`;
* :func:`verify_lattice` — for every lattice element ℓ, inputs labelled
  ⊑ ℓ become the 2-level problem's *low* inputs, output channels labelled
  ⊑ ℓ become the observable channels, and the standard pipeline runs; the
  program is secure for the lattice iff every per-element problem
  verifies.

Why per-element verification suffices: an attacker at level ℓ observes
exactly the channels labelled ⊑ ℓ and knows exactly the inputs labelled
⊑ ℓ; non-interference at ℓ says those observations are a function of
those inputs.  Quantifying over all ℓ covers every attacker the lattice
describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..lang.ast import Command

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from ..verifier.declarations import ResourceDecl
    from ..verifier.frontend import VerificationResult

Label = Any


class LatticeError(Exception):
    """The given order is not a lattice (or labels are unknown)."""


@dataclass(frozen=True)
class Lattice:
    """A finite lattice, constructed from elements and covering edges.

    ``covers`` are pairs ``(lower, upper)`` of the Hasse diagram; the
    order is their reflexive-transitive closure.  The constructor checks
    that every pair of elements has a least upper bound and a greatest
    lower bound, so an instance *is* a lattice.
    """

    elements: Tuple[Label, ...]
    covers: Tuple[Tuple[Label, Label], ...]
    _leq: Mapping[Tuple[Label, Label], bool] = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if len(set(self.elements)) != len(self.elements):
            raise LatticeError("duplicate lattice elements")
        for low, high in self.covers:
            if low not in self.elements or high not in self.elements:
                raise LatticeError(f"cover ({low!r}, {high!r}) mentions unknown elements")
        object.__setattr__(self, "_leq", self._closure())
        # Verify the lattice laws by brute force (the sets are tiny).
        for a, b in itertools.combinations_with_replacement(self.elements, 2):
            self._bound(a, b, upper=True)
            self._bound(a, b, upper=False)

    def _closure(self) -> dict:
        leq = {(a, a): True for a in self.elements}
        for low, high in self.covers:
            leq[(low, high)] = True
        changed = True
        while changed:
            changed = False
            for a, b, c in itertools.product(self.elements, repeat=3):
                if leq.get((a, b)) and leq.get((b, c)) and not leq.get((a, c)):
                    leq[(a, c)] = True
                    changed = True
        for a, b in itertools.combinations(self.elements, 2):
            if leq.get((a, b)) and leq.get((b, a)):
                raise LatticeError(f"order is not antisymmetric: {a!r} ≡ {b!r}")
        return leq

    def leq(self, a: Label, b: Label) -> bool:
        """``a ⊑ b``."""
        if a not in self.elements or b not in self.elements:
            raise LatticeError(f"unknown label {a!r} or {b!r}")
        return bool(self._leq.get((a, b)))

    def _bound(self, a: Label, b: Label, upper: bool) -> Label:
        if upper:
            candidates = [c for c in self.elements if self.leq(a, c) and self.leq(b, c)]
            least = [c for c in candidates if all(self.leq(c, other) for other in candidates)]
        else:
            candidates = [c for c in self.elements if self.leq(c, a) and self.leq(c, b)]
            least = [c for c in candidates if all(self.leq(other, c) for other in candidates)]
        if len(least) != 1:
            kind = "join" if upper else "meet"
            raise LatticeError(f"{a!r} and {b!r} have no unique {kind}: not a lattice")
        return least[0]

    def join(self, a: Label, b: Label) -> Label:
        """Least upper bound ``a ⊔ b``."""
        return self._bound(a, b, upper=True)

    def meet(self, a: Label, b: Label) -> Label:
        """Greatest lower bound ``a ⊓ b``."""
        return self._bound(a, b, upper=False)

    @property
    def bottom(self) -> Label:
        result = self.elements[0]
        for element in self.elements[1:]:
            result = self.meet(result, element)
        return result

    @property
    def top(self) -> Label:
        result = self.elements[0]
        for element in self.elements[1:]:
            result = self.join(result, element)
        return result

    def downset(self, level: Label) -> frozenset:
        """All elements ⊑ ``level`` (what an attacker at ``level`` sees)."""
        return frozenset(a for a in self.elements if self.leq(a, level))


# ---------------------------------------------------------------------------
# Standard lattices
# ---------------------------------------------------------------------------


def two_point() -> Lattice:
    """The paper's lattice: ``low ⊑ high``."""
    return Lattice(("low", "high"), (("low", "high"),))


def linear(labels: Sequence[Label]) -> Lattice:
    """A totally ordered lattice, least first (e.g. public ⊑ internal ⊑ secret)."""
    if not labels:
        raise LatticeError("linear lattice needs at least one label")
    covers = tuple((labels[i], labels[i + 1]) for i in range(len(labels) - 1))
    return Lattice(tuple(labels), covers)


def diamond() -> Lattice:
    """The classic diamond: ``bot ⊑ {left, right} ⊑ top`` with
    incomparable middle elements (e.g. HR data vs. finance data)."""
    return Lattice(
        ("bot", "left", "right", "top"),
        (("bot", "left"), ("bot", "right"), ("left", "top"), ("right", "top")),
    )


def powerset(basis: Sequence[str]) -> Lattice:
    """The powerset lattice of a set of categories, ordered by ⊆
    (Denning-style label model)."""
    elements = []
    for size in range(len(basis) + 1):
        for combo in itertools.combinations(sorted(basis), size):
            elements.append(frozenset(combo))
    covers = []
    for element in elements:
        for extra in basis:
            if extra not in element:
                covers.append((element, element | {extra}))
    return Lattice(tuple(elements), tuple(covers))


# ---------------------------------------------------------------------------
# Multi-level verification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelResult:
    """The 2-level verification outcome for one observer level."""

    level: Label
    low_inputs: frozenset
    low_channels: frozenset
    result: "VerificationResult"

    @property
    def verified(self) -> bool:
        return self.result.verified


@dataclass(frozen=True)
class LatticeVerificationResult:
    """Aggregated per-level results (footnote 1's reduction)."""

    name: str
    lattice: Lattice
    levels: Tuple[LevelResult, ...]

    @property
    def verified(self) -> bool:
        return all(level.verified for level in self.levels)

    def failing_levels(self) -> Tuple[Label, ...]:
        return tuple(level.level for level in self.levels if not level.verified)

    def summary(self) -> str:
        lines = [f"{self.name}: {'VERIFIED' if self.verified else 'REJECTED'} "
                 f"({len(self.levels)} lattice levels)"]
        for level in self.levels:
            verdict = "ok" if level.verified else "FAIL"
            lines.append(
                f"  level {level.level!r}: {verdict} "
                f"(low inputs {sorted(map(repr, level.low_inputs))}, "
                f"channels {sorted(map(repr, level.low_channels))})"
            )
        return "\n".join(lines)


def verify_lattice(
    name: str,
    program: Command,
    resources: "Tuple[ResourceDecl, ...]",
    input_labels: Mapping[str, Label],
    channel_labels: Mapping[str, Label],
    lattice: Lattice,
    bounded_instances: Optional[Callable[[Label], Optional[Callable[[], list]]]] = None,
    skip_top: bool = True,
    **verify_kwargs,
) -> LatticeVerificationResult:
    """Verify a program against an arbitrary finite lattice.

    ``input_labels`` / ``channel_labels`` assign a lattice element to every
    input variable and output channel.  For each element ℓ (the observer's
    level), a 2-level problem is built — inputs labelled ⊑ ℓ are low,
    channels labelled ⊑ ℓ are observable — and verified with the standard
    pipeline.  ``bounded_instances`` maps a level to that level's instance
    generator (levels need different instances because their high-input
    sets differ).  ``skip_top`` omits the ⊤ level when every input is ⊑ ⊤
    and every channel is ⊑ ⊤ — at ⊤ nothing is secret, so the problem is
    trivially about determinism only; pass ``False`` to include it.
    """
    from ..verifier.declarations import ProgramSpec
    from ..verifier.frontend import verify

    for variable, label in input_labels.items():
        if label not in lattice.elements:
            raise LatticeError(f"input {variable!r} labelled with unknown {label!r}")
    for channel, label in channel_labels.items():
        if label not in lattice.elements:
            raise LatticeError(f"channel {channel!r} labelled with unknown {label!r}")

    levels: list[LevelResult] = []
    for level in lattice.elements:
        if skip_top and level == lattice.top and len(lattice.elements) > 1:
            continue
        low_inputs = frozenset(
            variable for variable, label in input_labels.items() if lattice.leq(label, level)
        )
        high_inputs = frozenset(input_labels) - low_inputs
        low_channels = frozenset(
            channel for channel, label in channel_labels.items() if lattice.leq(label, level)
        )
        spec = ProgramSpec(
            name=f"{name}@{level!r}",
            program=program,
            resources=resources,
            low_inputs=low_inputs,
            high_inputs=high_inputs,
            low_channels=low_channels,
        )
        instances = bounded_instances(level) if bounded_instances is not None else None
        result = verify(spec, bounded_instances=instances, **verify_kwargs)
        levels.append(LevelResult(level, low_inputs, low_channels, result))
    return LatticeVerificationResult(name, lattice, tuple(levels))
