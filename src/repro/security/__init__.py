"""Empirical non-interference checking, leakage quantification, lattices."""

from .lattice import (
    Lattice,
    LatticeError,
    LatticeVerificationResult,
    LevelResult,
    diamond,
    linear,
    powerset,
    two_point,
    verify_lattice,
)
from .leakage import ThresholdLeak, mutual_information, threshold_leak
from .noninterference import (
    NIReport,
    Witness,
    all_outputs,
    channel_observer,
    check_exhaustive,
    check_noninterference,
    check_sampled,
    observation,
)

__all__ = [
    "Lattice",
    "LatticeError",
    "LatticeVerificationResult",
    "LevelResult",
    "NIReport",
    "ThresholdLeak",
    "Witness",
    "all_outputs",
    "channel_observer",
    "check_exhaustive",
    "check_noninterference",
    "check_sampled",
    "diamond",
    "linear",
    "mutual_information",
    "observation",
    "powerset",
    "threshold_leak",
    "two_point",
    "verify_lattice",
]
