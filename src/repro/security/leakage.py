"""Leakage quantification for internal timing channels (the Fig. 1 study).

The Fig. 1 program prints 3 or 4 depending on which thread's assignment to
``s`` lands last; the race outcome depends on the loop bound ``h`` through
the scheduler.  This module measures that channel:

* :func:`threshold_leak` — under the deterministic round-robin scheduler,
  the printed value is a function of ``h``; the function reveals whether
  ``h`` exceeds the public loop's bound (the paper's "leaks whether or not
  h is greater than 100").
* :func:`mutual_information` — under a randomized scheduler with a known
  seed distribution, the empirical mutual information I(h; output) in bits
  quantifies the probabilistic channel over many runs.

Both are used by ``benchmarks/bench_fig1_leak.py`` to regenerate the
behavioural claim of Fig. 1 and to show the commuting variant closes the
channel.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from ..lang.ast import Command
from ..lang.interpreter import run
from ..lang.scheduler import RandomScheduler, RoundRobinScheduler


@dataclass(frozen=True)
class ThresholdLeak:
    """Outcome of the deterministic round-robin experiment."""

    outputs_by_h: Dict[int, tuple]
    distinguishes: bool
    boundary: int | None

    def __str__(self) -> str:
        if not self.distinguishes:
            return "no leak: output independent of h under round-robin"
        return f"leak: round-robin output changes at h ≈ {self.boundary}"


def threshold_leak(
    program: Command,
    high_var: str,
    high_values: Sequence[int],
    fixed_inputs: dict | None = None,
) -> ThresholdLeak:
    """Run the program under round-robin for each high value; detect
    whether the output is a non-constant function of the secret."""
    outputs: Dict[int, tuple] = {}
    for value in high_values:
        inputs = dict(fixed_inputs or {})
        inputs[high_var] = value
        result = run(program, inputs, scheduler=RoundRobinScheduler())
        outputs[value] = result.output
    distinct = sorted({output for output in outputs.values()}, key=repr)
    boundary = None
    if len(distinct) > 1:
        ordered = sorted(outputs)
        for previous, current in zip(ordered, ordered[1:]):
            if outputs[previous] != outputs[current]:
                boundary = current
                break
    return ThresholdLeak(outputs, len(distinct) > 1, boundary)


def mutual_information(
    program: Command,
    high_var: str,
    high_values: Sequence[int],
    runs_per_value: int = 40,
    seed: int = 0,
    fixed_inputs: dict | None = None,
) -> float:
    """Empirical mutual information I(h; output) in bits, h uniform over
    ``high_values``, randomness from seeded schedulers."""
    joint: Counter = Counter()
    for value in high_values:
        for index in range(runs_per_value):
            inputs = dict(fixed_inputs or {})
            inputs[high_var] = value
            result = run(program, inputs, scheduler=RandomScheduler(seed + index))
            joint[(value, result.output)] += 1
    total = sum(joint.values())
    marginal_h: Counter = Counter()
    marginal_out: Counter = Counter()
    for (value, output), count in joint.items():
        marginal_h[value] += count
        marginal_out[output] += count
    information = 0.0
    for (value, output), count in joint.items():
        p_joint = count / total
        p_h = marginal_h[value] / total
        p_out = marginal_out[output] / total
        information += p_joint * math.log2(p_joint / (p_h * p_out))
    return max(information, 0.0)
