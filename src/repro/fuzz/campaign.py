"""Campaign driver: generate → differentially check → shrink → report.

One :class:`FuzzConfig` describes a whole campaign; :func:`run_campaign`
executes it on a single shared :class:`~repro.smt.session.SolverSession`
(generated cases reuse a small set of spec objects and body shapes, so
the validity memo and incremental solver make the marginal case cheap)
and returns a JSON-ready report.  Any failure is minimized with
:func:`repro.fuzz.shrink.shrink_case` and written as a self-contained
repro file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from ..smt.session import SolverSession
from .gen import GeneratedCase, generate_case, statement_count
from .oracle import OracleOutcome, check_case, failure_kind
from .reprofile import emit_repro
from .shrink import shrink_case


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one fuzzing campaign."""

    seed: int = 0
    count: int = 200
    budget: Optional[float] = None  # wall-clock seconds; None = unlimited
    shrink: bool = True
    schedules: int = 10
    exhaustive_budget: int = 2000
    repro_dir: Optional[str] = None


def _failure_entry(
    outcome: OracleOutcome,
    kind: str,
    config: FuzzConfig,
    session: SolverSession,
) -> dict:
    case = outcome.case
    entry: dict = {
        "case": case.name,
        "family": case.family,
        "mutation": case.mutation,
        "kind": kind,
        "verified": outcome.verified,
        "verified_no_prepass": outcome.verified_no_prepass,
        "prepass": outcome.prepass,
        "empirical_secure": outcome.empirical_secure,
        "empirical_mode": outcome.empirical_mode,
        "runtime_error": outcome.runtime_error,
        "witness": str(outcome.witness) if outcome.witness else None,
        "leak_bits": outcome.leak_bits,
        "statements": statement_count(case.program),
    }
    shrunk = case
    if config.shrink and kind in ("soundness", "prepass-disagreement"):

        def still_fails(candidate: GeneratedCase) -> bool:
            probe = check_case(
                candidate,
                session=session,
                schedules=config.schedules,
                exhaustive_budget=config.exhaustive_budget,
                seed=config.seed,
            )
            return failure_kind(probe) == kind

        shrunk = shrink_case(case, still_fails)
        entry["shrunk_statements"] = statement_count(shrunk.program)
        entry["shrunk_source"] = shrunk.source
    if config.repro_dir is not None:
        path = Path(config.repro_dir) / f"{case.name}.prog"
        emit_repro(shrunk, kind, path)
        entry["repro"] = str(path)
    return entry


def run_campaign(
    config: FuzzConfig,
    progress: Optional[Callable[[int, OracleOutcome], None]] = None,
) -> dict:
    """Run the campaign; returns the report dict (see the CLI docs)."""
    session = SolverSession()
    started = time.perf_counter()
    outcomes: List[OracleOutcome] = []
    failures: List[dict] = []
    budget_exhausted = False

    counters = {
        "verified": 0,
        "rejected": 0,
        "prepass_secure": 0,
        "prepass_unknown": 0,
        "prepass_skipped": 0,
        "differential_runs": 0,
        "exhaustive": 0,
        "sampled": 0,
        "executions": 0,
        "leaks_observed": 0,
        "rejected_without_observed_leak": 0,
    }
    families: dict = {}
    mutations: dict = {}

    for index in range(config.count):
        if config.budget is not None and time.perf_counter() - started > config.budget:
            budget_exhausted = True
            break
        case = generate_case(config.seed, index)
        outcome = check_case(
            case,
            session=session,
            schedules=config.schedules,
            exhaustive_budget=config.exhaustive_budget,
            seed=config.seed,
        )
        outcomes.append(outcome)
        if progress is not None:
            progress(index, outcome)

        families[case.family] = families.get(case.family, 0) + 1
        label = case.mutation or "secure-template"
        mutations[label] = mutations.get(label, 0) + 1
        counters["verified" if outcome.verified else "rejected"] += 1
        if outcome.prepass == "secure":
            counters["prepass_secure"] += 1
        elif outcome.prepass == "unknown":
            counters["prepass_unknown"] += 1
        else:
            counters["prepass_skipped"] += 1
        if outcome.verified_no_prepass is not None:
            counters["differential_runs"] += 1
        if outcome.empirical_mode == "exhaustive":
            counters["exhaustive"] += 1
        elif outcome.empirical_mode == "sampled":
            counters["sampled"] += 1
        counters["executions"] += outcome.executions
        if outcome.empirical_secure is False:
            counters["leaks_observed"] += 1
        if not outcome.verified and outcome.empirical_secure is not False:
            counters["rejected_without_observed_leak"] += 1

        kind = failure_kind(outcome)
        if kind is not None:
            failures.append(_failure_entry(outcome, kind, config, session))

    elapsed = time.perf_counter() - started
    soundness = [f for f in failures if f["kind"] == "soundness"]
    disagreements = [f for f in failures if f["kind"] == "prepass-disagreement"]
    runtime_errors = [f for f in failures if f["kind"] == "runtime-error"]
    return {
        "seed": config.seed,
        "requested": config.count,
        "generated": len(outcomes),
        "elapsed_s": round(elapsed, 3),
        "budget_exhausted": budget_exhausted,
        "schedules": config.schedules,
        "exhaustive_budget": config.exhaustive_budget,
        "families": dict(sorted(families.items())),
        "mutations": dict(sorted(mutations.items())),
        "counters": counters,
        "soundness_failures": soundness,
        "prepass_disagreements": disagreements,
        "runtime_errors": runtime_errors,
        "ok": not (soundness or disagreements or runtime_errors),
    }


__all__ = ["FuzzConfig", "run_campaign"]
