"""Self-contained ``.prog`` repro files for failing fuzz cases.

A repro file is a single parseable program: the metadata rides in ``//!``
header comments (ignored by the language lexer), so the same file feeds
both the human eye and :func:`load_repro`.  Specs are referenced by their
:data:`repro.spec.library` catalogue names, which keeps the file
dependency-free:

.. code-block:: text

    //! fuzz-repro v1
    //! name: "fuzz-0-123"
    //! failure: "soundness"
    //! family: "map_keyset"
    //! mutation: "print-raw"
    //! resources: [["MapKeySet", "m", ["keys"]]]
    //! low: ["adrs", "n"]
    //! high: ["hdata", "hpay"]
    //! groups: [[{"n": 2, "adrs": [1, 2]}, [{"hdata": [0, 0], ...}]]]
    m := alloc(emptyMap())
    ...
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Tuple

from ..lang.parser import parse_program
from .gen import GeneratedCase, ResourceRef

_MAGIC = "//! fuzz-repro v1"


class ReproError(Exception):
    """Raised for malformed repro files."""


def _tupled(value: Any) -> Any:
    """JSON arrays back to tuples (inputs must be hashable program values)."""
    if isinstance(value, list):
        return tuple(_tupled(item) for item in value)
    if isinstance(value, dict):
        return {key: _tupled(item) for key, item in value.items()}
    return value


def _listed(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_listed(item) for item in value]
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    if isinstance(value, dict):
        return {key: _listed(item) for key, item in value.items()}
    return value


def render_repro(case: GeneratedCase, failure: str) -> str:
    """The repro file text for a failing case."""
    header = [
        _MAGIC,
        f"//! name: {json.dumps(case.name)}",
        f"//! failure: {json.dumps(failure)}",
        f"//! family: {json.dumps(case.family)}",
        f"//! mutation: {json.dumps(case.mutation)}",
        "//! resources: "
        + json.dumps([[r.spec_name, r.location_var, list(r.low_views)] for r in case.resources]),
        f"//! low: {json.dumps(sorted(case.low_inputs))}",
        f"//! high: {json.dumps(sorted(case.high_inputs))}",
        f"//! groups: {json.dumps(_listed(case.groups))}",
    ]
    return "\n".join(header) + "\n" + case.source


def emit_repro(case: GeneratedCase, failure: str, path: str | Path) -> Path:
    """Write the repro file; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_repro(case, failure))
    return target


def load_repro(path: str | Path) -> Tuple[GeneratedCase, str]:
    """Rebuild a :class:`GeneratedCase` (and its failure kind) from a file."""
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise ReproError(f"{path}: not a fuzz-repro v1 file")
    meta: dict = {}
    for line in lines[1:]:
        if not line.startswith("//!"):
            break
        key, _, raw = line[3:].partition(":")
        try:
            meta[key.strip()] = json.loads(raw.strip())
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}: bad header {key.strip()!r}: {error}") from error
    for required in ("name", "failure", "resources", "low", "high", "groups"):
        if required not in meta:
            raise ReproError(f"{path}: missing //! {required} header")
    program = parse_program(text)  # //! lines are comments to the lexer
    resources = tuple(
        ResourceRef(spec_name, location, tuple(views))
        for spec_name, location, views in meta["resources"]
    )
    case = GeneratedCase(
        name=meta["name"],
        family=meta.get("family", "repro"),
        mutation=meta.get("mutation"),
        program=program,
        resources=resources,
        low_inputs=frozenset(meta["low"]),
        high_inputs=frozenset(meta["high"]),
        groups=_tupled(meta["groups"]),
        source=text,
    )
    return case, meta["failure"]


__all__ = ["ReproError", "emit_repro", "load_repro", "render_repro"]
