"""The differential soundness oracle.

For each generated case the oracle derives three independent verdicts:

1. **Verifier, fast path on** — :func:`repro.verifier.frontend.verify`
   with ``static_prepass=True`` (the production configuration).
2. **Verifier, fast path off** — re-run with ``static_prepass=False``
   whenever the prepass actually engaged (it can only change the outcome
   when it reported ``secure``); any difference in the verified verdict
   is a *fast-path bug*.
3. **Empirical noninterference** — paired executions over the case's
   instance groups: full interleaving enumeration when the state space
   fits a budget, seeded :class:`~repro.lang.scheduler.RandomScheduler`
   sweeps otherwise.  A case the verifier PROVED that empirically leaks
   is a *soundness failure* — the one verdict that must never occur.

Observed leaks are additionally quantified with
:func:`repro.security.leakage.mutual_information` /
:func:`~repro.security.leakage.threshold_leak` so a failure report says
not just *that* the case leaks but roughly how much.

``install_unsound_hook`` lets tests inject a deliberately unsound
verdict (forcing ``verified`` for selected cases) to prove end to end
that the oracle catches it and the shrinker minimizes it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..lang.ast import Command
from ..lang.interpreter import AbortError
from ..lang.scheduler import enumerate_executions
from ..lang.semantics import ABORT, Config, State
from ..security.leakage import mutual_information, threshold_leak
from ..security.noninterference import NIReport, Witness, channel_observer
from ..security.noninterference import check_noninterference
from ..smt.session import SolverSession
from ..verifier.frontend import verify
from .gen import GeneratedCase

# -- test hook ---------------------------------------------------------------

_UNSOUND_HOOK: Optional[Callable[[GeneratedCase], bool]] = None


def install_unsound_hook(hook: Optional[Callable[[GeneratedCase], bool]]) -> None:
    """Install (or clear, with ``None``) the injected-unsoundness hook.

    When the hook returns ``True`` for a case, the verifier's verdict is
    forced to *verified* — simulating a soundness bug the differential
    oracle must catch.  Testing only."""
    global _UNSOUND_HOOK
    _UNSOUND_HOOK = hook


def _hooked(case: GeneratedCase, verified: bool) -> bool:
    if _UNSOUND_HOOK is not None and _UNSOUND_HOOK(case):
        return True
    return verified


# -- outcome record ----------------------------------------------------------


@dataclass(frozen=True)
class OracleOutcome:
    """Everything the oracle concluded about one case."""

    case: GeneratedCase
    verified: bool
    prepass: Optional[str]  # 'secure' | 'unknown' | None (did not engage)
    verified_no_prepass: Optional[bool]  # None when the fast path never fired
    empirical_secure: Optional[bool]
    empirical_mode: Optional[str]  # 'exhaustive' | 'sampled'
    executions: int
    witness: Optional[Witness]
    leak_bits: Optional[float]
    leak_threshold: Optional[bool]
    runtime_error: Optional[str]
    elapsed: float

    @property
    def soundness_failure(self) -> bool:
        return self.verified and self.empirical_secure is False

    @property
    def prepass_disagreement(self) -> bool:
        return self.verified_no_prepass is not None and self.verified_no_prepass != self.verified


# -- empirical check ---------------------------------------------------------


def _exhaustive_within_budget(
    program: Command,
    groups: Sequence[Sequence[dict]],
    budget: int,
    observe,
) -> Optional[NIReport]:
    """Exhaustive Def. 2.1 check, or ``None`` if the interleaving space
    exceeds ``budget`` executions (a *completed* enumeration is required —
    a truncated one could miss outputs asymmetrically across variants and
    fabricate witnesses)."""
    total = 0
    for variants in groups:
        seen: dict = {}
        for inputs in variants:
            outputs = set()
            initial = Config(program, State.make(dict(inputs)))
            for final in enumerate_executions(initial, max_steps=50_000):
                if final == ABORT:
                    raise AbortError(f"program aborts on inputs {inputs!r}")
                total += 1
                if total > budget:
                    return None
                outputs.add(observe(final.state.output))
            for output in outputs:
                seen.setdefault(output, inputs)
        if len(seen) > 1:
            ordered = sorted(seen.items(), key=lambda item: repr(item[0]))
            (out1, in1), (out2, in2) = ordered[0], ordered[1]
            witness = Witness(in1, in2, out1, out2, "exhaustive enumeration")
            return NIReport(False, witness, total)
    return NIReport(True, None, total)


def _score_leak(
    case: GeneratedCase, witness: Witness
) -> tuple[Optional[float], Optional[bool]]:
    """Quantify an observed leak along the witness's differing high input."""
    differing = [
        name
        for name in sorted(case.high_inputs)
        if witness.inputs1.get(name) != witness.inputs2.get(name)
    ]
    if not differing:
        # Same inputs, different schedules: a pure scheduler channel.
        return None, None
    high_var = differing[0]
    fixed = {k: v for k, v in witness.inputs1.items() if k != high_var}
    values = [witness.inputs1[high_var], witness.inputs2[high_var]]
    try:
        bits = mutual_information(
            case.program, high_var, values, runs_per_value=24, seed=7, fixed_inputs=fixed
        )
        threshold = threshold_leak(case.program, high_var, values, fixed_inputs=fixed)
        return bits, threshold.distinguishes
    except Exception:
        return None, None


# -- the oracle --------------------------------------------------------------


def check_case(
    case: GeneratedCase,
    session: Optional[SolverSession] = None,
    schedules: int = 10,
    exhaustive_budget: int = 2000,
    seed: int = 0,
) -> OracleOutcome:
    """Run the full differential check on one case."""
    start = time.perf_counter()
    verified = False
    prepass: Optional[str] = None
    verified_no_prepass: Optional[bool] = None
    empirical_secure: Optional[bool] = None
    empirical_mode: Optional[str] = None
    executions = 0
    witness: Optional[Witness] = None
    leak_bits: Optional[float] = None
    leak_threshold: Optional[bool] = None
    runtime_error: Optional[str] = None

    try:
        spec = case.program_spec()
        result_on = verify(
            spec, bounded_instances=case.instances, static_prepass=True, session=session
        )
        verified = _hooked(case, result_on.verified)
        prepass = result_on.prepass.verdict if result_on.prepass is not None else None
        if prepass == "secure":
            # Only a 'secure' prepass skips pipeline stages, so only then
            # can the fast path change the verdict — run the reference.
            result_off = verify(
                spec, bounded_instances=case.instances, static_prepass=False, session=session
            )
            verified_no_prepass = _hooked(case, result_off.verified)
    except Exception as error:  # a crash on a well-formed case is a finding
        return OracleOutcome(
            case=case, verified=False, prepass=None, verified_no_prepass=None,
            empirical_secure=None, empirical_mode=None, executions=0,
            witness=None, leak_bits=None, leak_threshold=None,
            runtime_error=f"verify: {type(error).__name__}: {error}",
            elapsed=time.perf_counter() - start,
        )

    observe = channel_observer(None)
    groups = case.instances()
    try:
        report = _exhaustive_within_budget(case.program, groups, exhaustive_budget, observe)
        if report is not None:
            empirical_mode = "exhaustive"
        else:
            empirical_mode = "sampled"
            report = check_noninterference(
                case.program, groups, exhaustive=False, schedules=schedules,
                seed=seed, observe=observe,
            )
        empirical_secure = report.secure
        executions = report.executions_checked
        witness = report.witness
        if witness is not None:
            leak_bits, leak_threshold = _score_leak(case, witness)
    except Exception as error:  # aborts, deadlocks, ill-typed pure calls
        runtime_error = f"{type(error).__name__}: {error}"

    return OracleOutcome(
        case=case,
        verified=verified,
        prepass=prepass,
        verified_no_prepass=verified_no_prepass,
        empirical_secure=empirical_secure,
        empirical_mode=empirical_mode,
        executions=executions,
        witness=witness,
        leak_bits=leak_bits,
        leak_threshold=leak_threshold,
        runtime_error=runtime_error,
        elapsed=time.perf_counter() - start,
    )


def failure_kind(outcome: OracleOutcome) -> Optional[str]:
    """The failure class of an outcome, if any (soundness dominates)."""
    if outcome.soundness_failure:
        return "soundness"
    if outcome.prepass_disagreement:
        return "prepass-disagreement"
    if outcome.runtime_error is not None:
        return "runtime-error"
    return None


__all__ = [
    "OracleOutcome",
    "check_case",
    "failure_kind",
    "install_unsound_hook",
]
