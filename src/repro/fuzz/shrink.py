"""Delta-debugging shrinker for failing fuzz cases.

Greedy ddmin over the program AST: repeatedly propose syntactically
smaller programs (chunked statement removal, branch selection,
loop-body unrolling, parallel-branch dropping, atomic-body reduction,
instance-group trimming) and keep any candidate for which the failure
predicate still holds.  The predicate re-runs the full differential
oracle, so every accepted reduction is guaranteed to exhibit the *same
class* of failure — the result is a minimal, self-contained repro.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..lang.ast import (
    Atomic,
    Command,
    If,
    Par,
    Skip,
    While,
    par_all,
    seq_all,
)
from ..lang.printer import flatten_par, flatten_seq
from .gen import GeneratedCase, statement_count


def _chunk_sizes(length: int) -> Iterator[int]:
    size = length // 2
    while size >= 1:
        yield size
        size //= 2


def _reductions(cmd: Command) -> Iterator[Command]:
    """Syntactically smaller variants of ``cmd``, larger cuts first."""
    statements = flatten_seq(cmd)
    if len(statements) > 1:
        for size in _chunk_sizes(len(statements)):
            for start in range(0, len(statements) - size + 1):
                rest = statements[:start] + statements[start + size:]
                yield seq_all(*rest)
        for position, statement in enumerate(statements):
            for reduced in _reductions(statement):
                replaced = list(statements)
                replaced[position] = reduced
                yield seq_all(*replaced)
        return
    if isinstance(cmd, Skip):
        return
    if isinstance(cmd, If):
        yield cmd.then_branch
        yield cmd.else_branch
        for reduced in _reductions(cmd.then_branch):
            yield If(cmd.condition, reduced, cmd.else_branch)
        for reduced in _reductions(cmd.else_branch):
            yield If(cmd.condition, cmd.then_branch, reduced)
        return
    if isinstance(cmd, While):
        yield Skip()
        yield cmd.body  # single unrolled iteration
        for reduced in _reductions(cmd.body):
            yield While(cmd.condition, reduced)
        return
    if isinstance(cmd, Par):
        branches = flatten_par(cmd)
        for position in range(len(branches)):
            rest = branches[:position] + branches[position + 1:]
            yield par_all(*rest)
        for position, branch in enumerate(branches):
            for reduced in _reductions(branch):
                replaced = list(branches)
                replaced[position] = reduced
                yield par_all(*replaced)
        return
    if isinstance(cmd, Atomic):
        if cmd.when is not None:
            yield Atomic(cmd.body, cmd.action, cmd.argument, None)
        for reduced in _reductions(cmd.body):
            yield Atomic(reduced, cmd.action, cmd.argument, cmd.when)
        return
    # Primitive statement: removal is handled at the sequence level, but a
    # whole-program single statement can still vanish.
    yield Skip()


def _trim_groups(
    case: GeneratedCase, still_fails: Callable[[GeneratedCase], bool]
) -> GeneratedCase:
    """Drop instance groups / high variants not needed for the failure."""
    groups = list(case.groups)
    if len(groups) > 1:
        for position in range(len(groups) - 1, -1, -1):
            if len(groups) == 1:
                break
            trimmed = groups[:position] + groups[position + 1:]
            candidate = GeneratedCase(
                name=case.name, family=case.family, mutation=case.mutation,
                program=case.program, resources=case.resources,
                low_inputs=case.low_inputs, high_inputs=case.high_inputs,
                groups=tuple(trimmed), source=case.source,
            )
            if still_fails(candidate):
                groups = trimmed
                case = candidate
    new_groups = []
    changed = False
    for low, variants in case.groups:
        if len(variants) > 2:
            candidate_groups = tuple(
                (l, v if (l, v) != (low, variants) else variants[:2])
                for l, v in case.groups
            )
            candidate = GeneratedCase(
                name=case.name, family=case.family, mutation=case.mutation,
                program=case.program, resources=case.resources,
                low_inputs=case.low_inputs, high_inputs=case.high_inputs,
                groups=candidate_groups, source=case.source,
            )
            if still_fails(candidate):
                new_groups.append((low, variants[:2]))
                changed = True
                continue
        new_groups.append((low, variants))
    if changed:
        case = GeneratedCase(
            name=case.name, family=case.family, mutation=case.mutation,
            program=case.program, resources=case.resources,
            low_inputs=case.low_inputs, high_inputs=case.high_inputs,
            groups=tuple(new_groups), source=case.source,
        )
    return case


def shrink_case(
    case: GeneratedCase,
    still_fails: Callable[[GeneratedCase], bool],
    max_candidates: int = 4000,
) -> GeneratedCase:
    """Minimize ``case`` while ``still_fails`` holds.

    Greedy to a fixpoint: each accepted candidate restarts the scan, so
    the result is 1-minimal with respect to the reduction steps (no
    single step can shrink it further)."""
    case = _trim_groups(case, still_fails)
    budget = max_candidates
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate_program in _reductions(case.program):
            budget -= 1
            if budget <= 0:
                break
            if statement_count(candidate_program) >= statement_count(case.program):
                continue
            candidate = case.with_program(candidate_program)
            if still_fails(candidate):
                case = candidate
                improved = True
                break
    return case


__all__ = ["shrink_case"]
