"""Seeded random generator of adversarial concurrent programs.

Each generated case is a complete verification problem — program AST,
resource declarations (drawn from the :mod:`repro.spec.library`
catalogue), input sensitivity labelling, and bounded instance groups —
shaped like the hand-written corpus: allocate, ``share``, race two or
three threads full of atomic action blocks / secret-dependent timing
loops / low-guarded branches, ``unshare``, then declassify through the
abstraction's low views.

A case is either a *secure template* (expected to verify, expected
noninterferent) or carries one *leak mutation* (``print-high``,
``print-raw``, ``branch-high``, ``high-arg``, ``raced-read``,
``invalid-spec``) that the verifier must reject.  The generator's intent
is recorded but never trusted: the differential oracle re-derives both
verdicts independently.

Determinism: case ``(seed, index)`` is a pure function of its arguments —
the same pair always yields byte-identical source, so any failure a
campaign finds is replayable from its name alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    If,
    Lit,
    Load,
    Expr,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    Unshare,
    Var,
    While,
    par_all,
    seq_all,
)
from ..lang.printer import print_program
from ..spec.library import INVALID_SPECS, VALID_SPECS
from ..verifier.declarations import ProgramSpec, ResourceDecl

#: Leak mutations the generator can inject (``None`` = secure template).
MUTATIONS = (
    "print-high",
    "print-raw",
    "branch-high",
    "high-arg",
    "raced-read",
    "invalid-spec",
)

#: Program families, modelled on the Table-1 corpus shapes.
FAMILIES = (
    "counter_inc",
    "integer_add",
    "assign_const",
    "set_add",
    "map_keyset",
    "map_histogram",
    "map_add_value",
    "list_length",
    "list_sum",
    "list_mean",
)


@lru_cache(maxsize=None)
def spec_instance(spec_name: str):
    """One shared spec object per catalogue name (keeps the validity
    memo and VC caches warm across thousands of generated cases)."""
    try:
        factory = VALID_SPECS[spec_name]
    except KeyError:
        factory = INVALID_SPECS[spec_name]
    return factory()


@dataclass(frozen=True)
class ResourceRef:
    """A JSON-serializable pointer to a catalogue resource declaration."""

    spec_name: str
    location_var: str
    low_views: Tuple[str, ...] = ()

    def build(self) -> ResourceDecl:
        return ResourceDecl(
            self.spec_name, spec_instance(self.spec_name), self.location_var, self.low_views
        )


#: Instance groups in JSON-able form: ((low_inputs, (variant, ...)), ...).
InstanceGroups = Tuple[Tuple[dict, Tuple[dict, ...]], ...]


@dataclass(frozen=True)
class GeneratedCase:
    """One generated verification problem plus its empirical instances."""

    name: str
    family: str
    mutation: Optional[str]
    program: Command
    resources: Tuple[ResourceRef, ...]
    low_inputs: frozenset
    high_inputs: frozenset
    groups: InstanceGroups
    source: str = field(default="", compare=False)

    def program_spec(self) -> ProgramSpec:
        return ProgramSpec(
            name=self.name,
            program=self.program,
            resources=tuple(ref.build() for ref in self.resources),
            low_inputs=self.low_inputs,
            high_inputs=self.high_inputs,
        )

    def instances(self) -> List[List[dict]]:
        return [[{**low, **variant} for variant in variants] for low, variants in self.groups]

    def with_program(self, program: Command) -> "GeneratedCase":
        return GeneratedCase(
            name=self.name,
            family=self.family,
            mutation=self.mutation,
            program=program,
            resources=self.resources,
            low_inputs=self.low_inputs,
            high_inputs=self.high_inputs,
            groups=self.groups,
            source=print_program(program),
        )


def statement_count(cmd: Command) -> int:
    """Primitive statements plus control headers; ``Seq``/``Par`` glue and
    ``skip`` are free.  The shrinker minimizes this metric."""
    if isinstance(cmd, Skip):
        return 0
    if isinstance(cmd, Seq):
        return statement_count(cmd.first) + statement_count(cmd.second)
    if isinstance(cmd, Par):
        return statement_count(cmd.left) + statement_count(cmd.right)
    if isinstance(cmd, If):
        return 1 + statement_count(cmd.then_branch) + statement_count(cmd.else_branch)
    if isinstance(cmd, While):
        return 1 + statement_count(cmd.body)
    if isinstance(cmd, Atomic):
        return 1 + statement_count(cmd.body)
    return 1


# ---------------------------------------------------------------------------
# Expression/statement shorthands
# ---------------------------------------------------------------------------


def _at(array: str, index: Expr) -> Expr:
    return Call("at", (Var(array), index))


def _add(left: Expr, right: Expr) -> Expr:
    return BinOp("+", left, right)


def _lt(left: Expr, right: Expr) -> Expr:
    return BinOp("<", left, right)


def _timing_loop(suffix: str, index: Expr) -> List[Command]:
    """``d := at(hdata, i); k := 0; while (k < d) { k := k + 1 }`` — the
    corpus's secret-dependent timing idiom."""
    d, k = Var(f"d{suffix}"), Var(f"k{suffix}")
    return [
        Assign(d.name, _at("hdata", index)),
        Assign(k.name, Lit(0)),
        While(_lt(k, d), Assign(k.name, _add(k, Lit(1)))),
    ]


@dataclass
class _Draft:
    """Mutable state while one case is being assembled."""

    rng: random.Random
    family: str
    ref: ResourceRef
    init: Expr
    low_arrays: Dict[str, Tuple[int, ...]]  # name -> value domain
    uses_payload: bool
    payload_domain: Tuple[int, ...]
    readout: List[Command]
    mutation: Optional[str] = None


def _family_draft(rng: random.Random, family: str) -> _Draft:
    mk = lambda *a, **kw: ResourceRef(*a, **kw)  # noqa: E731
    small = (0, 1, 2, 3)
    if family == "counter_inc":
        return _Draft(
            rng, family, mk("CounterInc", "c"), Lit(0),
            {"gate": (0, 1)}, False, (),
            [Load("result", Var("c")), Print(Var("result"))],
        )
    if family == "integer_add":
        return _Draft(
            rng, family, mk("IntegerAdd", "c"), Lit(0),
            {"amts": small}, False, (),
            [Load("result", Var("c")), Print(Var("result"))],
        )
    if family == "assign_const":
        return _Draft(
            rng, family, mk("AssignConstantAlpha", "c"), Lit(0),
            {"vals": (-2, -1, 0, 1, 2, 3)}, False, (),
            [Print(Lit(0))],
        )
    if family == "set_add":
        return _Draft(
            rng, family, mk("SetAdd", "st"), Call("toSet", (Call("seq", ()),)),
            {"elems": (1, 2, 3)}, False, (),
            [Load("s", Var("st")), Print(Call("setToSeq", (Var("s"),)))],
        )
    if family == "map_keyset":
        return _Draft(
            rng, family, mk("MapKeySet", "m", ("keys",)), Call("emptyMap", ()),
            {"adrs": (1, 2)}, True, (10, 20),
            [
                Load("mv", Var("m")),
                Print(Call("sort", (Call("setToSeq", (Call("keys", (Var("mv"),)),)),))),
            ],
        )
    if family == "map_histogram":
        return _Draft(
            rng, family, mk("MapHistogram", "m"), Call("emptyMap", ()),
            {"buckets": (1, 2)}, False, (),
            [Load("mv", Var("m")), Print(Var("mv"))],
        )
    if family == "map_add_value":
        return _Draft(
            rng, family, mk("MapAddValue", "m"), Call("emptyMap", ()),
            {"users": (1, 2)}, False, (),
            [Load("mv", Var("m")), Print(Var("mv"))],
        )
    if family == "list_length":
        return _Draft(
            rng, family, mk("ListLength", "lst", ("len",)), Call("seq", ()),
            {"names": (1, 2, 3)}, True, small,
            [Load("l", Var("lst")), Print(Call("len", (Var("l"),)))],
        )
    if family == "list_sum":
        return _Draft(
            rng, family, mk("ListSum", "lst", ("debtSum",)), Call("seq", ()),
            {"amts": small}, True, (1, 2, 3),
            [Load("l", Var("lst")), Print(Call("debtSum", (Var("l"),)))],
        )
    if family == "list_mean":
        return _Draft(
            rng, family, mk("ListMean", "lst", ("meanStats",)), Call("seq", ()),
            {"sals": small}, True, (1, 2, 3),
            [Load("l", Var("lst")), Print(Call("meanStats", (Var("l"),)))],
        )
    raise ValueError(f"unknown family {family!r}")


def _op_statements(draft: _Draft, suffix: str, index: Expr) -> List[Command]:
    """Local binds + the atomic action block for one work item, mirroring
    the corpus body idioms exactly (the conformance checker must be able
    to relate the body to the declared action)."""
    family, loc = draft.family, draft.ref.location_var
    high_arg = draft.mutation == "high-arg"
    if family == "counter_inc":
        t = Var(f"t{suffix}")
        return [
            Atomic(
                seq_all(Load(t.name, Var(loc)), Store(Var(loc), _add(t, Lit(1)))),
                "Inc", Lit(0), _maybe_guard(draft, loc),
            )
        ]
    if family == "integer_add":
        a, v = Var(f"a{suffix}"), Var(f"v{suffix}")
        source = _at("hdata", index) if high_arg else _at("amts", index)
        return [
            Assign(a.name, source),
            Atomic(
                seq_all(Load(v.name, Var(loc)), Store(Var(loc), _add(v, a))),
                "Add", a, None,
            ),
        ]
    if family == "assign_const":
        w = Var(f"w{suffix}")
        # Writing a *secret* is legitimate here: the constant abstraction
        # hides the raced cell entirely, so draw from hdata sometimes.
        source = (
            _at("hdata", index)
            if draft.rng.random() < 0.4
            else _at("vals", index)
        )
        return [
            Assign(w.name, source),
            Atomic(Store(Var(loc), w), "SetTo", w, None),
        ]
    if family == "set_add":
        e, s = Var(f"e{suffix}"), Var(f"s{suffix}")
        source = _at("hdata", index) if high_arg else _at("elems", index)
        return [
            Assign(e.name, source),
            Atomic(
                seq_all(Load(s.name, Var(loc)), Store(Var(loc), Call("setAdd", (s, e)))),
                "SetAdd", e, None,
            ),
        ]
    if family == "map_keyset":
        k, r, m = Var(f"kk{suffix}"), Var(f"r{suffix}"), Var(f"m{suffix}")
        key_source = _at("hpay", index) if high_arg else _at("adrs", index)
        return [
            Assign(k.name, key_source),
            Assign(r.name, _at("hpay", index)),
            Atomic(
                seq_all(Load(m.name, Var(loc)), Store(Var(loc), Call("put", (m, k, r)))),
                "Put", Call("pair", (k, r)), None,
            ),
        ]
    if family == "map_histogram":
        b, m = Var(f"b{suffix}"), Var(f"m{suffix}")
        source = _at("hdata", index) if high_arg else _at("buckets", index)
        return [
            Assign(b.name, source),
            Atomic(
                seq_all(Load(m.name, Var(loc)), Store(Var(loc), Call("addToValue", (m, b, Lit(1))))),
                "IncBucket", b, None,
            ),
        ]
    if family == "map_add_value":
        u, m = Var(f"u{suffix}"), Var(f"m{suffix}")
        source = _at("hdata", index) if high_arg else _at("users", index)
        return [
            Assign(u.name, source),
            Atomic(
                seq_all(Load(m.name, Var(loc)), Store(Var(loc), Call("addToValue", (m, u, Lit(1))))),
                "AddVal", Call("pair", (u, Lit(1))), None,
            ),
        ]
    if family in ("list_length", "list_sum", "list_mean"):
        low_name = next(iter(draft.low_arrays))
        p, l = Var(f"p{suffix}"), Var(f"l{suffix}")
        if family == "list_length":
            # Anything may be appended — only the count is revealed.
            item = Call("pair", (_at(low_name, index), p))
            binds: List[Command] = [Assign(p.name, _at("hpay", index))]
        else:
            # (secret tag, low amount); amount low per the projections.
            amount = _at("hdata", index) if high_arg else _at(low_name, index)
            item = Call("pair", (p, amount))
            binds = [Assign(p.name, _at("hpay", index))]
        return binds + [
            Atomic(
                seq_all(Load(l.name, Var(loc)), Store(Var(loc), Call("append", (l, item)))),
                "Append", item, None,
            ),
        ]
    raise ValueError(f"unknown family {family!r}")


def _maybe_guard(draft: _Draft, loc: str) -> Optional[Expr]:
    """Occasionally attach an always-true blocking guard (counter values
    are non-negative) to exercise the App. D guard machinery."""
    if draft.family == "counter_inc" and draft.rng.random() < 0.12:
        return BinOp(">=", Call("deref", (Var(loc),)), Lit(0))
    return None


def _thread_body_loop(draft: _Draft, t: int, lo: Expr, hi: Expr) -> Command:
    """Corpus-style sliced loop: ``i := lo; while (i < hi) { ... }``."""
    suffix = str(t)
    i = Var(f"i{suffix}")
    steps: List[Command] = []
    if draft.rng.random() < 0.55:
        steps.extend(_timing_loop(suffix, i))
    ops = _op_statements(draft, suffix, i)
    if draft.rng.random() < 0.3 and "gate" in draft.low_arrays:
        ops = [If(BinOp("==", _at("gate", i), Lit(1)), seq_all(*ops), Skip())]
    steps.extend(ops)
    steps.append(Assign(i.name, _add(i, Lit(1))))
    body: List[Command] = [Assign(i.name, lo), While(_lt(i, hi), seq_all(*steps))]
    if draft.mutation == "raced-read" and t == 1:
        raced = Var(f"x{suffix}")
        body.append(Load(raced.name, Var(draft.ref.location_var)))
        body.append(Print(raced))
    return seq_all(*body)


def _thread_body_straight(draft: _Draft, t: int, indices: Sequence[int]) -> Command:
    """Straight-line thread handling fixed item indices (keeps the state
    space small enough for exhaustive interleaving enumeration)."""
    steps: List[Command] = []
    for j in indices:
        suffix = f"{t}x{j}" if len(indices) > 1 else str(t)
        if draft.rng.random() < 0.45:
            steps.extend(_timing_loop(suffix, Lit(j)))
        steps.extend(_op_statements(draft, suffix, Lit(j)))
    if draft.mutation == "raced-read" and t == 1:
        raced = Var(f"x{t}")
        steps.append(Load(raced.name, Var(draft.ref.location_var)))
        steps.append(Print(raced))
    return seq_all(*steps)


def _thread_body_sequential(draft: _Draft) -> Command:
    """Sequential-Tally shape: a dead secret read followed by a plain loop
    through the shared API.  No parallelism, no secret-bounded loops — the
    one program family the static prepass can prove secure outright, which
    is exactly what gives the prepass-on/off differential its coverage."""
    i = Var("i1")
    steps = _op_statements(draft, "1", i)
    steps.append(Assign(i.name, _add(i, Lit(1))))
    return seq_all(
        Assign("priv", _at("hdata", Lit(0))),  # secret stays private
        Assign(i.name, Lit(0)),
        While(_lt(i, Var("n")), seq_all(*steps)),
    )


def _invalid_spec_case(rng: random.Random, name: str) -> GeneratedCase:
    """Figure-1-leaky shape: raced constant writes under the *identity*
    abstraction (an invalid spec) with secret-dependent timing, result
    printed.  Must be rejected; empirically leaks through timing."""
    ref = ResourceRef("AssignIdentityAlpha", "c")
    threads = []
    for t, constant in ((1, 3), (2, 4)):
        steps = _timing_loop(str(t), Lit(0)) if t == 1 else []
        steps.append(Atomic(Store(Var("c"), Lit(constant)), "SetTo", Lit(constant), None))
        threads.append(seq_all(*steps))
    program = seq_all(
        Alloc("c", Lit(0)),
        Share(ref.spec_name),
        par_all(*threads),
        Unshare(ref.spec_name),
        Load("result", Var("c")),
        Print(Var("result")),
    )
    groups: InstanceGroups = (
        ({"n": 1}, ({"hdata": (0,)}, {"hdata": (3,)})),
    )
    case = GeneratedCase(
        name=name, family="invalid_spec", mutation="invalid-spec",
        program=program, resources=(ref,),
        low_inputs=frozenset({"n"}), high_inputs=frozenset({"hdata"}),
        groups=groups,
    )
    return case.with_program(program)


def generate_case(seed: int, index: int) -> GeneratedCase:
    """The ``index``-th case of campaign ``seed`` (a pure function)."""
    rng = random.Random((seed * 1_000_003 + index) & 0xFFFFFFFF)
    name = f"fuzz-{seed}-{index}"

    mutation: Optional[str] = None
    if rng.random() < 0.35:
        mutation = rng.choice(MUTATIONS)
    if mutation == "invalid-spec":
        return _invalid_spec_case(rng, name)

    family = rng.choice(FAMILIES)
    draft = _family_draft(rng, family)
    draft.mutation = mutation
    if mutation == "high-arg" and family in ("counter_inc", "assign_const"):
        # No low-projected argument to corrupt; degrade to print-high.
        draft.mutation = mutation = "print-high"
    if mutation == "print-raw" and not draft.ref.low_views:
        # Identity abstraction: the raw value *is* the view; degrade.
        draft.mutation = mutation = "print-high"

    sequential = family in ("counter_inc", "integer_add") and rng.random() < 0.18
    if sequential and mutation == "raced-read":
        # A race needs a second thread; keep the leak observable instead.
        draft.mutation = mutation = "print-high"

    straight = not sequential and rng.random() < 0.45
    if sequential:
        n = rng.choice((2, 3, 4))
        threads = [_thread_body_sequential(draft)]
    elif straight:
        thread_count = rng.choice((2, 2, 3))
        per_thread = 1 if thread_count == 3 else rng.choice((1, 1, 2))
        n = thread_count * per_thread
        indices = list(range(n))
        threads = [
            _thread_body_straight(draft, t + 1, indices[t * per_thread:(t + 1) * per_thread])
            for t in range(thread_count)
        ]
    else:
        n = rng.choice((2, 3, 4))
        half = BinOp("/", Var("n"), Lit(2))
        threads = [
            _thread_body_loop(draft, 1, Lit(0), half),
            _thread_body_loop(draft, 2, half, Var("n")),
        ]

    readout = list(draft.readout)
    if mutation == "print-raw":
        # Leak the concrete structure instead of its abstraction view.
        readout = [readout[0], Print(Var(readout[0].target))]
    elif mutation == "print-high":
        high = "hpay" if draft.uses_payload else "hdata"
        readout.append(Print(_at(high, Lit(0))))
    elif mutation == "branch-high":
        readout.append(Assign("hb", _at("hdata", Lit(0))))
        readout.append(
            If(BinOp(">", Var("hb"), Lit(1)), Print(Lit(1)), Print(Lit(2)))
        )

    program = seq_all(
        Alloc(draft.ref.location_var, draft.init),
        Share(draft.ref.spec_name),
        par_all(*threads),
        Unshare(draft.ref.spec_name),
        *readout,
    )

    # -- instances ---------------------------------------------------------
    def low_group() -> dict:
        group = {"n": n}
        for array, domain in draft.low_arrays.items():
            group[array] = tuple(rng.choice(domain) for _ in range(n))
        return group

    def high_variant() -> dict:
        variant = {"hdata": tuple(rng.choice((0, 1, 2, 3)) for _ in range(n))}
        if draft.uses_payload:
            variant["hpay"] = tuple(rng.choice(draft.payload_domain) for _ in range(n))
        return variant

    group_count = 1 if rng.random() < 0.7 else 2
    variant_count = rng.choice((2, 3))
    groups = tuple(
        (low_group(), tuple(high_variant() for _ in range(variant_count)))
        for _ in range(group_count)
    )

    low_inputs = frozenset({"n"} | set(draft.low_arrays))
    high_inputs = frozenset({"hdata"} | ({"hpay"} if draft.uses_payload else set()))

    case = GeneratedCase(
        name=name, family=family, mutation=mutation, program=program,
        resources=(draft.ref,), low_inputs=low_inputs,
        high_inputs=high_inputs, groups=groups,
    )
    return case.with_program(program)


def generate_corpus(seed: int, count: int) -> List[GeneratedCase]:
    return [generate_case(seed, index) for index in range(count)]


__all__ = [
    "FAMILIES",
    "MUTATIONS",
    "GeneratedCase",
    "InstanceGroups",
    "ResourceRef",
    "generate_case",
    "generate_corpus",
    "spec_instance",
    "statement_count",
]
