"""Adversarial scenario generation and differential soundness fuzzing.

``repro.fuzz`` closes the loop between the verifier and the operational
semantics: a seeded generator builds adversarial concurrent programs
over the :mod:`repro.lang` AST with specs from the
:mod:`repro.spec.library` catalogue, and a differential oracle compares
the verifier's verdict (static prepass on *and* off) against empirical
noninterference measured by actually executing the program under many
schedulers.  "PROVED but leaks" is a hard soundness failure; a prepass /
full-pipeline verdict split is a fast-path bug.  Failures are minimized
by a delta-debugging shrinker and emitted as self-contained ``.prog``
repro files.

Entry points: ``python -m repro fuzz`` (CLI), :func:`run_campaign`
(library), :func:`generate_case` / :func:`check_case` (building blocks).
"""

from .campaign import FuzzConfig, run_campaign
from .gen import (
    FAMILIES,
    MUTATIONS,
    GeneratedCase,
    ResourceRef,
    generate_case,
    generate_corpus,
    statement_count,
)
from .oracle import OracleOutcome, check_case, failure_kind, install_unsound_hook
from .reprofile import ReproError, emit_repro, load_repro, render_repro
from .shrink import shrink_case

__all__ = [
    "FAMILIES",
    "MUTATIONS",
    "FuzzConfig",
    "GeneratedCase",
    "OracleOutcome",
    "ReproError",
    "ResourceRef",
    "check_case",
    "emit_repro",
    "failure_kind",
    "generate_case",
    "generate_corpus",
    "install_unsound_hook",
    "load_repro",
    "render_repro",
    "run_campaign",
    "shrink_case",
    "statement_count",
]
