"""The evaluation case studies: all 18 Table-1 rows + negative controls."""

from .base import CaseStudy, PaperRow, make_instance_groups, make_instances
from .counters import (
    count_sick_days,
    count_vaccinated,
    figure1,
    figure1_commuting,
    figure2,
    sequential_tally,
)
from .insecure import (
    count_channel,
    figure1_abstraction_leak,
    figure1_leaky,
    map_high_key,
    map_value_leak,
    unique_guard_split,
)
from .lists import debt_sum, email_metadata, mean_salary, patient_statistic
from .queues import one_producer_one_consumer, pipeline, two_producers_two_consumers
from .valuedep import (
    value_dependent,
    value_dependent_leak,
    value_dependent_public_secret,
)
from .threaded import (
    THREADED_CASES,
    ThreadedCaseStudy,
    figure2_forkjoin,
    figure3_forkjoin,
    forkjoin_high_key,
)
from .sets_maps import (
    count_purchases,
    figure3,
    most_valuable_purchase,
    sales_by_region,
    salary_histogram,
    sick_employee_names,
    website_visitor_ips,
)
from .generated import (
    GENERATED_CASES,
    GENERATED_FAMILIES,
    rate_limiter,
    salary_analytics,
    session_store,
)

#: The 18 rows of Table 1, in the paper's order.
TABLE1_CASES: tuple[CaseStudy, ...] = (
    count_vaccinated,
    figure2,
    count_sick_days,
    figure1,
    mean_salary,
    email_metadata,
    patient_statistic,
    debt_sum,
    sick_employee_names,
    website_visitor_ips,
    figure3,
    sales_by_region,
    salary_histogram,
    count_purchases,
    most_valuable_purchase,
    one_producer_one_consumer,
    pipeline,
    two_producers_two_consumers,
)

#: Secure programs beyond Table 1 (used by benchmarks and tests).
EXTRA_SECURE_CASES: tuple[CaseStudy, ...] = (
    figure1_commuting,
    value_dependent,
    sequential_tally,
)

#: Negative controls that must be rejected.
INSECURE_CASES: tuple[CaseStudy, ...] = (
    figure1_leaky,
    figure1_abstraction_leak,
    map_value_leak,
    map_high_key,
    unique_guard_split,
    count_channel,
    value_dependent_leak,
    value_dependent_public_secret,
)

ALL_CASES: tuple[CaseStudy, ...] = TABLE1_CASES + EXTRA_SECURE_CASES + INSECURE_CASES


def case_by_name(name: str) -> CaseStudy:
    for case in ALL_CASES:
        if case.name == name:
            return case
    raise KeyError(f"no case study named {name!r}")


__all__ = [
    "ALL_CASES",
    "CaseStudy",
    "EXTRA_SECURE_CASES",
    "GENERATED_CASES",
    "GENERATED_FAMILIES",
    "INSECURE_CASES",
    "PaperRow",
    "TABLE1_CASES",
    "THREADED_CASES",
    "ThreadedCaseStudy",
    "case_by_name",
    "figure2_forkjoin",
    "figure3_forkjoin",
    "forkjoin_high_key",
    "make_instance_groups",
    "make_instances",
]
