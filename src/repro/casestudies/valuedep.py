"""Value-dependent sensitivity case study (Sec. 3.4).

The paper's assertion language expresses value-dependent secrecy with
implications ``b ⇒ Low(e)``: "a data structure might contain pairs of
booleans and other values, where the boolean expresses the sensitivity of
the other value".  This case study exercises that pattern end to end:

* the shared list's entries are ``(is_public, value)`` pairs;
* the action's relational precondition is
  ``Low(flag) ∧ (flag ⇒ Low(value))`` — the flags are public knowledge,
  and a value must be low only when its flag says so;
* the abstraction is the multiset of *public* entries plus the total
  count, so the program may release the sorted public values and the
  number of secret entries, while the secret values never reach a public
  output.

The relational precondition is beyond the taint walk's projections, so
the analyzer defers it as a retroactive obligation (the same mechanism
as the pipeline's check-at-unshare, Sec. 2.5), discharged by bounded
relational checking.
"""

from __future__ import annotations

from ..spec.library import value_dependent_list_spec
from ..verifier.declarations import ResourceDecl
from .base import CaseStudy, make_instances

_VALUE_DEP_SRC = """
// Value-dependent sensitivity: append (is_public, value) pairs; release
// only the sorted public values and the count of secret entries.
l := alloc(seq())
share ValueDepList
{
    i1 := 0
    while (i1 < n / 2) {
        f1 := at(flags, i1)
        v1 := at(vals, i1)
        d1 := at(delays, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }          // secret-dependent timing
        atomic [AppendLabelled(pair(f1, v1))] { s1 := [l]; [l] := append(s1, pair(f1, v1)) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        f2 := at(flags, i2)
        v2 := at(vals, i2)
        d2 := at(delays, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [AppendLabelled(pair(f2, v2))] { s2 := [l]; [l] := append(s2, pair(f2, v2)) }
        i2 := i2 + 1
    }
}
unshare ValueDepList
lv := [l]
print(publicValues(lv))
print(secretCount(lv))
"""

#: flags: which positions are public (low).  vals: the secret variants
#: differ exactly in the positions whose flag is 0.
_FLAGS = (1, 0, 1, 0)

value_dependent = CaseStudy(
    name="Value-Dependent-Sensitivity",
    description="(is_public, value) pairs; flag ⇒ Low(value); release public view",
    source=_VALUE_DEP_SRC,
    resources=(
        ResourceDecl(
            "ValueDepList",
            value_dependent_list_spec(),
            "l",
            low_views=("publicValues", "secretCount"),
        ),
    ),
    low_inputs=frozenset({"n", "flags"}),
    high_inputs=frozenset({"vals", "delays"}),
    expected_verified=True,
    instances=make_instances(
        {"n": 4, "flags": _FLAGS},
        [
            {"vals": (7, 100, 9, 200), "delays": (0, 3, 1, 0)},
            {"vals": (7, 111, 9, 222), "delays": (2, 0, 0, 4)},
        ],
    ),
)

#: Negative control: the whole labelled list (secret values included) is
#: printed — the abstraction covers only the public part.
value_dependent_leak = CaseStudy(
    name="Value-Dependent leak",
    description="prints the entire labelled list, including secret values",
    source=_VALUE_DEP_SRC.replace("print(publicValues(lv))", "print(lv)"),
    resources=value_dependent.resources,
    low_inputs=value_dependent.low_inputs,
    high_inputs=value_dependent.high_inputs,
    expected_verified=False,
    instances=value_dependent.instances,
)

#: Negative control: a *public-flagged* value carries secret data — the
#: relational precondition (flag ⇒ Low(value)) is violated, which only the
#: retroactive bounded check can see.
value_dependent_public_secret = CaseStudy(
    name="Value-Dependent public-secret",
    description="a public-flagged value differs across secrets (pre violated)",
    source=_VALUE_DEP_SRC,
    resources=value_dependent.resources,
    low_inputs=value_dependent.low_inputs,
    high_inputs=value_dependent.high_inputs,
    expected_verified=False,
    instances=make_instances(
        {"n": 4, "flags": _FLAGS},
        [
            {"vals": (7, 100, 9, 200), "delays": (0, 0, 0, 0)},
            {"vals": (8, 100, 9, 200), "delays": (0, 0, 0, 0)},  # public slot 0 varies
        ],
    ),
)
