"""Producer–consumer case studies (Table 1 rows 16–18).

These model the general parallel programming patterns of Sec. 5 with the
App. D totalized queue specification.  Blocking is expressed with the
``atomic ... when (e)`` guard of App. D; consuming threads read the head
*inside* the atomic block, so the read value is high until the queue is
unshared — exactly the pipeline situation where the middle thread's
produce precondition can only be established retroactively (Sec. 5,
"Retroactive checking of action arguments").
"""

from __future__ import annotations

from ..spec.library import producer_consumer_spec
from ..verifier.declarations import ResourceDecl
from .base import CaseStudy, PaperRow, make_instances

_ONE_PRODUCER_ONE_CONSUMER_SRC = """
// 1-Producer-1-Consumer: both roles are unique actions, so the produced
// SEQUENCE (hence the consumed sequence, its prefix) is low.
q := alloc(emptyQueue())
share QueuePC
{
    i1 := 0
    while (i1 < n) {
        x1 := at(items, i1)
        atomic [Prod(x1)] { v1 := [q]; [q] := qProduce(v1, x1) }
        i1 := i1 + 1
    }
} || {
    i2 := 0
    while (i2 < n) {
        atomic [Cons(0)] when (qSize(deref(q)) > 0) {
            v2 := [q]
            h2 := qHead(v2)
            [q] := qConsume(v2, 0)
            acc2 := acc2 + h2
        }
        i2 := i2 + 1
    }
}
unshare QueuePC
r := [q]
print(producedSeq(r))
"""

one_producer_one_consumer = CaseStudy(
    name="1-Producer-1-Consumer",
    description="single producer/consumer; produced (=consumed) sequence low",
    source=_ONE_PRODUCER_ONE_CONSUMER_SRC,
    resources=(
        ResourceDecl("QueuePC", producer_consumer_spec(1, 1), "q", low_views=("producedSeq",)),
    ),
    low_inputs=frozenset({"n", "items"}),
    high_inputs=frozenset(),
    expected_verified=True,
    paper=PaperRow("Queue", "Consumed sequence", 82, 88, 3.23),
    instances=make_instances({"n": 3, "items": (5, 6, 7)}, [{}]),
)

_PIPELINE_SRC = """
// Pipeline: producer -> queue A -> transformer -> queue B -> consumer.
// The middle thread cannot know the data it reads from A is low while A is
// still shared; the produce precondition on B is established retroactively.
qa := alloc(emptyQueue())
qb := alloc(emptyQueue())
share QueueA
share QueueB
{
    i1 := 0
    while (i1 < n) {
        x1 := at(items, i1)
        atomic [ProdA(x1)] { v1 := [qa]; [qa] := qProduce(v1, x1) }
        i1 := i1 + 1
    }
} || {
    i2 := 0
    while (i2 < n) {
        atomic [ConsA(0)] when (qSize(deref(qa)) > 0) {
            v2 := [qa]
            h2 := qHead(v2)
            [qa] := qConsume(v2, 0)
        }
        y2 := h2 * 2
        atomic [ProdB(y2)] { w2 := [qb]; [qb] := qProduce(w2, y2) }
        i2 := i2 + 1
    }
} || {
    i3 := 0
    while (i3 < n) {
        atomic [ConsB(0)] when (qSize(deref(qb)) > 0) {
            v3 := [qb]
            h3 := qHead(v3)
            [qb] := qConsume(v3, 0)
        }
        i3 := i3 + 1
    }
}
unshare QueueA
unshare QueueB
r := [qb]
print(producedSeq(r))
"""

pipeline = CaseStudy(
    name="Pipeline",
    description="three-stage pipeline over two queues; retroactive precondition",
    source=_PIPELINE_SRC,
    resources=(
        ResourceDecl("QueueA", producer_consumer_spec(1, 1, suffix="A"), "qa", low_views=("producedSeq",)),
        ResourceDecl("QueueB", producer_consumer_spec(1, 1, suffix="B"), "qb", low_views=("producedSeq",)),
    ),
    low_inputs=frozenset({"n", "items"}),
    high_inputs=frozenset(),
    expected_verified=True,
    paper=PaperRow("Two queues", "Consumed sequences", 122, 100, 3.66),
    instances=make_instances({"n": 3, "items": (5, 6, 7)}, [{}]),
)

_TWO_PRODUCERS_TWO_CONSUMERS_SRC = """
// 2-Producers-2-Consumers: produce and consume are SHARED (merged) actions,
// so only the multiset of produced values is low — which item each consumer
// got, and the production order, depend on scheduling.
q := alloc(emptyQueue())
share Queue2P2C
{
    i1 := 0
    while (i1 < n) {
        x1 := at(itemsA, i1)
        atomic [Op(pair("prod", x1))] { v1 := [q]; [q] := qProduce(v1, x1) }
        i1 := i1 + 1
    }
} || {
    i2 := 0
    while (i2 < n) {
        x2 := at(itemsB, i2)
        atomic [Op(pair("prod", x2))] { v2 := [q]; [q] := qProduce(v2, x2) }
        i2 := i2 + 1
    }
} || {
    i3 := 0
    while (i3 < n) {
        atomic [Op(pair("cons", 0))] when (qSize(deref(q)) > 0) {
            v3 := [q]
            [q] := qConsume(v3, 0)
        }
        i3 := i3 + 1
    }
} || {
    i4 := 0
    while (i4 < n) {
        atomic [Op(pair("cons", 0))] when (qSize(deref(q)) > 0) {
            v4 := [q]
            [q] := qConsume(v4, 0)
        }
        i4 := i4 + 1
    }
}
unshare Queue2P2C
r := [q]
print(producedSorted(r))
"""

two_producers_two_consumers = CaseStudy(
    name="2-Producers-2-Consumers",
    description="two producers + two consumers; produced multiset low",
    source=_TWO_PRODUCERS_TWO_CONSUMERS_SRC,
    resources=(
        ResourceDecl(
            "Queue2P2C",
            producer_consumer_spec(2, 2),
            "q",
            low_views=("producedMs", "producedSorted"),
        ),
    ),
    low_inputs=frozenset({"n", "itemsA", "itemsB"}),
    high_inputs=frozenset(),
    expected_verified=True,
    paper=PaperRow("Queue", "Produced multiset", 130, 134, 8.45),
    instances=make_instances({"n": 2, "itemsA": (5, 6), "itemsB": (7, 8)}, [{}]),
)
