"""Case-study infrastructure for the evaluation (Sec. 5 / Table 1).

A :class:`CaseStudy` bundles everything needed to reproduce one Table-1
row: the program text, its resource declarations, the input sensitivity
labelling, the bounded instances used to discharge retroactive
obligations, the expected verdict, and the paper's reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Optional, Sequence, Tuple

from ..lang.ast import Command
from ..lang.parser import parse_program
from ..verifier.declarations import ProgramSpec, ResourceDecl
from ..verifier.frontend import VerificationResult, verify


@dataclass(frozen=True)
class PaperRow:
    """The numbers Table 1 reports for one example."""

    data_structure: str
    abstraction: str
    loc: int
    annotations: int
    time_seconds: float


@dataclass(frozen=True)
class CaseStudy:
    """One evaluation example."""

    name: str
    description: str
    source: str
    resources: Tuple[ResourceDecl, ...]
    low_inputs: frozenset
    high_inputs: frozenset
    expected_verified: bool
    paper: Optional[PaperRow] = None
    instances: Optional[Callable[[], list]] = None

    def program(self) -> Command:
        return _parse_cached(self.source)

    def program_spec(self) -> ProgramSpec:
        return ProgramSpec(
            name=self.name,
            program=self.program(),
            resources=self.resources,
            low_inputs=self.low_inputs,
            high_inputs=self.high_inputs,
        )

    def verify(self, **kwargs) -> VerificationResult:
        """Run the full verification pipeline on this case study."""
        return verify(self.program_spec(), bounded_instances=self.instances, **kwargs)

    def loc(self) -> int:
        """Non-blank, non-comment lines of program text (Table 1's LOC)."""
        count = 0
        for line in self.source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("//"):
                count += 1
        return count

    def annotation_count(self) -> int:
        """Specification artifacts: resource declarations (actions, domains,
        projections) plus labelled inputs — the analogue of Table 1's
        'Ann.' column for our declaration-based frontend."""
        count = len(self.low_inputs) + len(self.high_inputs)
        for decl in self.resources:
            count += 2  # the declaration itself + the abstraction
            count += len(decl.low_views)
            for action in decl.spec.actions:
                count += 1 + len(action.low_projections)
                if action.unary_requires is not None:
                    count += 1
        return count


@lru_cache(maxsize=None)
def _parse_cached(source: str) -> Command:
    return parse_program(source)


def make_instances(low: dict, high_variants: Sequence[dict]) -> Callable[[], list]:
    """Build an instance generator: one group whose members share the low
    inputs ``low`` and differ in the high inputs ``high_variants``."""

    def generate() -> list:
        return [[{**low, **variant} for variant in high_variants]]

    return generate


def make_instance_groups(groups: Sequence[tuple[dict, Sequence[dict]]]) -> Callable[[], list]:
    """Several groups of (low inputs, high variants)."""

    def generate() -> list:
        return [[{**low, **variant} for variant in variants] for low, variants in groups]

    return generate
