"""Counter / integer case studies (Table 1 rows 1–4).

* **Count-Vaccinated** — two workers count vaccinated household members on
  a shared counter; vaccination status is low, other household data is
  secret and only affects timing.
* **Figure 2** — the paper's running example: workers add per-household
  target counts to a shared integer; the counts are low but the time to
  compute them is secret-dependent (modelled by a high-bounded busy loop).
* **Count-Sick-Days** — workers add low per-employee sick-day counts; the
  rest of the personnel record is secret and affects timing.
* **Figure 1 (secure variant)** — the intro example: both threads race on
  a shared variable with secret-dependent timing, but the raced value is
  never leaked; the constant abstraction verifies it.
* **Figure 1 (commuting variant)** — the intro's repaired program: the
  racing writes are replaced by commutative additions (+3 / +4), so the
  final value is low and may be printed.
"""

from __future__ import annotations

from ..spec.library import (
    assign_constant_abstraction_spec,
    counter_increment_spec,
    integer_add_spec,
)
from ..verifier.declarations import ResourceDecl
from .base import CaseStudy, PaperRow, make_instances

_COUNT_VACCINATED_SRC = """
// Count-Vaccinated: two workers count vaccinated people on a shared counter.
c := alloc(0)
share CounterInc
{
    i1 := 0
    while (i1 < n / 2) {
        d1 := at(hdata, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }          // secret-dependent timing
        if (at(vacc, i1) == 1) {
            atomic [Inc()] { t1 := [c]; [c] := t1 + 1 }
        }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        d2 := at(hdata, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        if (at(vacc, i2) == 1) {
            atomic [Inc()] { t2 := [c]; [c] := t2 + 1 }
        }
        i2 := i2 + 1
    }
}
unshare CounterInc
result := [c]
print(result)
"""

count_vaccinated = CaseStudy(
    name="Count-Vaccinated",
    description="shared counter incremented for each vaccinated person",
    source=_COUNT_VACCINATED_SRC,
    resources=(ResourceDecl("CounterInc", counter_increment_spec(), "c"),),
    low_inputs=frozenset({"n", "vacc"}),
    high_inputs=frozenset({"hdata"}),
    expected_verified=True,
    paper=PaperRow("Counter, increment", "None", 44, 46, 10.15),
    instances=make_instances(
        {"n": 4, "vacc": (1, 0, 1, 1)},
        [{"hdata": (0, 0, 0, 0)}, {"hdata": (3, 0, 2, 5)}, {"hdata": (7, 1, 0, 0)}],
    ),
)

_FIGURE2_SRC = """
// Figure 2: targetSize — workers add per-household target counts.
c := alloc(0)
share IntegerAdd
{
    i1 := 0
    while (i1 < n / 2) {
        t1 := at(targets, i1)
        d1 := at(hcollisions, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }          // hash-collision timing
        atomic [Add(t1)] { v1 := [c]; [c] := v1 + t1 }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        t2 := at(targets, i2)
        d2 := at(hcollisions, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [Add(t2)] { v2 := [c]; [c] := v2 + t2 }
        i2 := i2 + 1
    }
}
unshare IntegerAdd
result := [c]
print(result)
"""

figure2 = CaseStudy(
    name="Figure 2",
    description="targetSize: workers add low counts to a shared integer",
    source=_FIGURE2_SRC,
    resources=(ResourceDecl("IntegerAdd", integer_add_spec(), "c"),),
    low_inputs=frozenset({"n", "targets"}),
    high_inputs=frozenset({"hcollisions"}),
    expected_verified=True,
    paper=PaperRow("Integer, add", "None", 129, 95, 10.90),
    instances=make_instances(
        {"n": 4, "targets": (2, 0, 1, 3)},
        [{"hcollisions": (0, 0, 0, 0)}, {"hcollisions": (4, 0, 1, 2)}],
    ),
)

_COUNT_SICK_DAYS_SRC = """
// Count-Sick-Days: sum low per-employee sick-day counts.
c := alloc(0)
share IntegerAdd
{
    i1 := 0
    while (i1 < n / 2) {
        s1 := at(sick, i1)
        d1 := at(hrecord, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }
        atomic [Add(s1)] { v1 := [c]; [c] := v1 + s1 }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        s2 := at(sick, i2)
        d2 := at(hrecord, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [Add(s2)] { v2 := [c]; [c] := v2 + s2 }
        i2 := i2 + 1
    }
}
unshare IntegerAdd
total := [c]
print(total)
"""

count_sick_days = CaseStudy(
    name="Count-Sick-Days",
    description="sum of low sick-day counts with secret-dependent timing",
    source=_COUNT_SICK_DAYS_SRC,
    resources=(ResourceDecl("IntegerAdd", integer_add_spec(), "c"),),
    low_inputs=frozenset({"n", "sick"}),
    high_inputs=frozenset({"hrecord"}),
    expected_verified=True,
    paper=PaperRow("Integer, add", "None", 52, 45, 13.67),
    instances=make_instances(
        {"n": 4, "sick": (1, 2, 0, 4)},
        [{"hrecord": (0, 0, 0, 0)}, {"hrecord": (2, 5, 0, 1)}],
    ),
)

_FIGURE1_SRC = """
// Figure 1 (secure variant): the raced variable is never leaked.
s := alloc(0)
t1 := 0
t2 := 0
share AssignConstantAlpha
{
    while (t1 < 100) { t1 := t1 + 1 }
    atomic [SetTo(3)] { [s] := 3 }
} || {
    while (t2 < h) { t2 := t2 + 1 }
    atomic [SetTo(4)] { [s] := 4 }
}
unshare AssignConstantAlpha
print(0)
"""

figure1 = CaseStudy(
    name="Figure 1",
    description="racing writes under the constant abstraction; nothing leaked",
    source=_FIGURE1_SRC,
    resources=(ResourceDecl("AssignConstantAlpha", assign_constant_abstraction_spec(), "s"),),
    low_inputs=frozenset(),
    high_inputs=frozenset({"h"}),
    expected_verified=True,
    paper=PaperRow("Integer, arbitrary", "Constant", 29, 20, 1.52),
    instances=make_instances({}, [{"h": 0}, {"h": 150}]),
)

_FIGURE1_COMMUTING_SRC = """
// Figure 1, repaired as in the introduction: the writes commute (+3 / +4),
// so the final value is low and may be printed.
s := alloc(0)
t1 := 0
t2 := 0
share IntegerAdd
{
    while (t1 < 100) { t1 := t1 + 1 }
    atomic [Add(3)] { v1 := [s]; [s] := v1 + 3 }
} || {
    while (t2 < h) { t2 := t2 + 1 }
    atomic [Add(4)] { v2 := [s]; [s] := v2 + 4 }
}
unshare IntegerAdd
result := [s]
print(result)
"""

figure1_commuting = CaseStudy(
    name="Figure 1 (commuting)",
    description="the intro's repaired program: +3/+4 commute, result printable",
    source=_FIGURE1_COMMUTING_SRC,
    resources=(ResourceDecl("IntegerAdd", integer_add_spec(), "s"),),
    low_inputs=frozenset(),
    high_inputs=frozenset({"h"}),
    expected_verified=True,
    paper=None,  # not a Table 1 row; used by the Fig. 1 leak benchmark
    instances=make_instances({}, [{"h": 0}, {"h": 150}]),
)

_SEQUENTIAL_TALLY_SRC = """
// Sequential-Tally: one thread sums low entries through the shared API.
// No interference, no secret-dependent observables: the static prepass
// of repro.analysis proves this secure without a single solver call.
c := alloc(0)
priv := at(hdata, 0) + at(hdata, 1)       // secret stays private
share IntegerAdd
i := 0
while (i < n) {
    t := at(xs, i)
    atomic [Add(t)] { v := [c]; [c] := v + t }
    i := i + 1
}
unshare IntegerAdd
result := [c]
print(result)
"""

sequential_tally = CaseStudy(
    name="Sequential-Tally",
    description="single-threaded tally over the shared counter API; "
    "discharged by the static prepass with zero SMT queries",
    source=_SEQUENTIAL_TALLY_SRC,
    resources=(ResourceDecl("IntegerAdd", integer_add_spec(), "c"),),
    low_inputs=frozenset({"n", "xs"}),
    high_inputs=frozenset({"hdata"}),
    expected_verified=True,
    paper=None,  # not a Table 1 row; exercises the static fast path
    instances=make_instances(
        {"n": 3, "xs": (2, 0, 5)},
        [{"hdata": (0, 0)}, {"hdata": (9, 4)}],
    ),
)
