"""Promoted fuzz families as scalable case studies.

The differential fuzzer (:mod:`repro.fuzz`) generates its adversarial
programs from a small set of Table-1-shaped templates.  Three of those
families proved stable across campaigns (verified by the full pipeline,
empirically noninterferent under both exhaustive and sampled checking)
and are promoted here as first-class case studies with the **corpus
size** ``n`` as a scaling parameter — the workload axis the fuzz-corpus
benchmark in ``benchmarks/run_benchmarks.py`` sweeps:

* :func:`session_store` — a login service stores ``(session id, secret
  token)`` pairs in a shared map; only the key set is declassified
  (``MapKeySet``, the Figure 3 shape at scale).
* :func:`rate_limiter` — per-client request counters bumped under
  secret-dependent handler latency (``MapHistogram``).
* :func:`salary_analytics` — concurrent appends of ``(secret id, low
  salary)`` records with only the mean declassified (``ListMean``).

These are intentionally *not* part of :data:`repro.casestudies.ALL_CASES`
(the pinned 29-case paper corpus); import :data:`GENERATED_CASES` or the
factories directly.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Tuple

from ..spec.library import (
    list_append_mean_spec,
    map_histogram_spec,
    map_put_keyset_spec,
)
from ..verifier.declarations import ResourceDecl
from .base import CaseStudy, make_instances

#: Default corpus size for the ``GENERATED_CASES`` tuple.
DEFAULT_SIZE = 4


def _arrays(tag: str, n: int, *domains: Tuple[int, ...]):
    """Deterministic input arrays for size ``n`` (pure in ``(tag, n)``)."""
    rng = random.Random(f"{tag}#{n}")  # str seeds hash stably across processes
    return tuple(tuple(rng.choice(domain) for _ in range(n)) for domain in domains)


_SESSION_STORE_SRC = """
// session_store (promoted fuzz family, map_keyset): two workers register
// login sessions — put (low session id, secret auth token) into a shared
// map; only the sorted session-id set is declassified.
m := alloc(emptyMap())
share MapKeySet
{
    i1 := 0
    while (i1 < n / 2) {
        sid1 := at(sids, i1)
        tok1 := at(htokens, i1)
        atomic [Put(pair(sid1, tok1))] { m1 := [m]; [m] := put(m1, sid1, tok1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        sid2 := at(sids, i2)
        tok2 := at(htokens, i2)
        atomic [Put(pair(sid2, tok2))] { m2 := [m]; [m] := put(m2, sid2, tok2) }
        i2 := i2 + 1
    }
}
unshare MapKeySet
mv := [m]
print(sort(setToSeq(keys(mv))))
"""


@lru_cache(maxsize=None)
def session_store(n: int = DEFAULT_SIZE) -> CaseStudy:
    """The session-store family at corpus size ``n``."""
    (sids,) = _arrays("session_store/low", n, (1, 2, 3))
    tok_a, tok_b = _arrays("session_store/high", n, (10, 20, 30), (40, 50, 60))
    return CaseStudy(
        name=f"Gen-Session-Store-{n}",
        description=f"promoted fuzz family map_keyset at corpus size {n}",
        source=_SESSION_STORE_SRC,
        resources=(
            ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",)),
        ),
        low_inputs=frozenset({"n", "sids"}),
        high_inputs=frozenset({"htokens"}),
        expected_verified=True,
        paper=None,  # promoted from repro.fuzz, not a Table 1 row
        instances=make_instances(
            {"n": n, "sids": sids},
            [{"htokens": tok_a}, {"htokens": tok_b}],
        ),
    )


_RATE_LIMITER_SRC = """
// rate_limiter (promoted fuzz family, map_histogram): two request workers
// bump a per-client counter; handling time depends on the secret request
// body, but per-key increments commute so the count map stays low.
m := alloc(emptyMap())
share MapHistogram
{
    i1 := 0
    while (i1 < n / 2) {
        cl1 := at(clients, i1)
        d1 := at(hbody, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }
        atomic [IncBucket(cl1)] { m1 := [m]; [m] := addToValue(m1, cl1, 1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        cl2 := at(clients, i2)
        d2 := at(hbody, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [IncBucket(cl2)] { m2 := [m]; [m] := addToValue(m2, cl2, 1) }
        i2 := i2 + 1
    }
}
unshare MapHistogram
mv := [m]
print(mv)
"""


@lru_cache(maxsize=None)
def rate_limiter(n: int = DEFAULT_SIZE) -> CaseStudy:
    """The rate-limiter family at corpus size ``n``."""
    (clients,) = _arrays("rate_limiter/low", n, (1, 2))
    body_a, body_b = _arrays("rate_limiter/high", n, (0, 1, 2), (0, 1, 2, 3))
    return CaseStudy(
        name=f"Gen-Rate-Limiter-{n}",
        description=f"promoted fuzz family map_histogram at corpus size {n}",
        source=_RATE_LIMITER_SRC,
        resources=(ResourceDecl("MapHistogram", map_histogram_spec(), "m"),),
        low_inputs=frozenset({"n", "clients"}),
        high_inputs=frozenset({"hbody"}),
        expected_verified=True,
        paper=None,  # promoted from repro.fuzz, not a Table 1 row
        instances=make_instances(
            {"n": n, "clients": clients},
            [{"hbody": body_a}, {"hbody": body_b}],
        ),
    )


_SALARY_ANALYTICS_SRC = """
// salary_analytics (promoted fuzz family, list_mean): append (secret
// employee id, low salary) records concurrently; the list order and the
// ids are secret, the declassified mean statistics are not.
lst := alloc(seq())
share ListMean
{
    i1 := 0
    while (i1 < n / 2) {
        e1 := at(hids, i1)
        sa1 := at(salaries, i1)
        atomic [Append(pair(e1, sa1))] { l1 := [lst]; [lst] := append(l1, pair(e1, sa1)) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        e2 := at(hids, i2)
        sa2 := at(salaries, i2)
        atomic [Append(pair(e2, sa2))] { l2 := [lst]; [lst] := append(l2, pair(e2, sa2)) }
        i2 := i2 + 1
    }
}
unshare ListMean
l := [lst]
print(meanStats(l))
"""


@lru_cache(maxsize=None)
def salary_analytics(n: int = DEFAULT_SIZE) -> CaseStudy:
    """The salary-analytics family at corpus size ``n``."""
    (salaries,) = _arrays("salary_analytics/low", n, (50, 60, 70, 80))
    ids_a, ids_b = _arrays("salary_analytics/high", n, (1, 2, 3, 4), (6, 7, 8, 9))
    return CaseStudy(
        name=f"Gen-Salary-Analytics-{n}",
        description=f"promoted fuzz family list_mean at corpus size {n}",
        source=_SALARY_ANALYTICS_SRC,
        resources=(
            ResourceDecl("ListMean", list_append_mean_spec(), "lst", low_views=("meanStats",)),
        ),
        low_inputs=frozenset({"n", "salaries"}),
        high_inputs=frozenset({"hids"}),
        expected_verified=True,
        paper=None,  # promoted from repro.fuzz, not a Table 1 row
        instances=make_instances(
            {"n": n, "salaries": salaries},
            [{"hids": ids_a}, {"hids": ids_b}],
        ),
    )


#: The promoted families at the default corpus size.
GENERATED_CASES: Tuple[CaseStudy, ...] = (
    session_store(),
    rate_limiter(),
    salary_analytics(),
)

#: Factories keyed by family name (the fuzz-corpus benchmark axis).
GENERATED_FAMILIES = {
    "session_store": session_store,
    "rate_limiter": rate_limiter,
    "salary_analytics": salary_analytics,
}

__all__ = [
    "DEFAULT_SIZE",
    "GENERATED_CASES",
    "GENERATED_FAMILIES",
    "rate_limiter",
    "salary_analytics",
    "session_store",
]
