"""Set and map case studies (Table 1 rows 9–15)."""

from __future__ import annotations

from ..spec.library import (
    map_add_value_spec,
    map_disjoint_put_spec,
    map_histogram_spec,
    map_put_if_greater_spec,
    map_put_keyset_spec,
    set_add_spec,
)
from ..verifier.declarations import ResourceDecl
from .base import CaseStudy, PaperRow, make_instances

# ---------------------------------------------------------------------------
# Sets — the same resource specification serves two different
# implementations (the reuse point of Sec. 5 'Resource specifications').
# ---------------------------------------------------------------------------

_SICK_EMPLOYEE_NAMES_SRC = """
// Sick-Employee-Names (tree-set implementation): insert low employee ids;
// looking up the (secret) medical record takes secret-dependent time.
st := alloc(toSet(seq()))
share SetAdd
{
    i1 := 0
    while (i1 < n / 2) {
        nm1 := at(names, i1)
        d1 := at(hrecord, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }
        atomic [SetAdd(nm1)] { s1 := [st]; [st] := setAdd(s1, nm1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        nm2 := at(names, i2)
        d2 := at(hrecord, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [SetAdd(nm2)] { s2 := [st]; [st] := setAdd(s2, nm2) }
        i2 := i2 + 1
    }
}
unshare SetAdd
s := [st]
print(setToSeq(s))
"""

sick_employee_names = CaseStudy(
    name="Sick-Employee-Names",
    description="insert low ids into a (tree) set under secret timing",
    source=_SICK_EMPLOYEE_NAMES_SRC,
    resources=(ResourceDecl("SetAdd", set_add_spec(), "st"),),
    low_inputs=frozenset({"n", "names"}),
    high_inputs=frozenset({"hrecord"}),
    expected_verified=True,
    paper=PaperRow("Treeset, add", "None", 105, 113, 28.43),
    instances=make_instances(
        {"n": 4, "names": (3, 1, 2, 1)},
        [{"hrecord": (0, 0, 0, 0)}, {"hrecord": (4, 1, 0, 2)}],
    ),
)

_WEBSITE_VISITOR_IPS_SRC = """
// Website-Visitor-IPs (list-set implementation): same resource spec as
// Sick-Employee-Names, different program; visit counts gate insertion.
st := alloc(toSet(seq()))
share SetAdd
{
    i1 := 0
    while (i1 < n / 2) {
        if (at(visits, i1) > 0) {
            ip1 := at(ips, i1)
            atomic [SetAdd(ip1)] { s1 := [st]; [st] := setAdd(s1, ip1) }
        }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        if (at(visits, i2) > 0) {
            ip2 := at(ips, i2)
            atomic [SetAdd(ip2)] { s2 := [st]; [st] := setAdd(s2, ip2) }
        }
        i2 := i2 + 1
    }
}
unshare SetAdd
s := [st]
print(setToSeq(s))
"""

website_visitor_ips = CaseStudy(
    name="Website-Visitor-IPs",
    description="insert low IPs into a (list) set; spec reused from the treeset",
    source=_WEBSITE_VISITOR_IPS_SRC,
    resources=(ResourceDecl("SetAdd", set_add_spec(), "st"),),
    low_inputs=frozenset({"n", "visits", "ips"}),
    high_inputs=frozenset(),
    expected_verified=True,
    paper=PaperRow("Listset, add", "None", 74, 69, 6.20),
    instances=make_instances(
        {"n": 4, "visits": (1, 0, 2, 1), "ips": (10, 11, 12, 10)},
        [{}],
    ),
)

# ---------------------------------------------------------------------------
# Maps
# ---------------------------------------------------------------------------

_FIGURE3_SRC = """
// Figure 3: targets — put (low address, secret reason) into a shared map;
// only the sorted key set is output.
m := alloc(emptyMap())
share MapKeySet
{
    i1 := 0
    while (i1 < n / 2) {
        adr1 := at(addrs, i1)
        rsn1 := at(reasons, i1)
        atomic [Put(pair(adr1, rsn1))] { m1 := [m]; [m] := put(m1, adr1, rsn1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        adr2 := at(addrs, i2)
        rsn2 := at(reasons, i2)
        atomic [Put(pair(adr2, rsn2))] { m2 := [m]; [m] := put(m2, adr2, rsn2) }
        i2 := i2 + 1
    }
}
unshare MapKeySet
mv := [m]
print(sort(setToSeq(keys(mv))))
"""

figure3 = CaseStudy(
    name="Figure 3",
    description="map put with secret values; leak the sorted key set",
    source=_FIGURE3_SRC,
    resources=(ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",)),),
    low_inputs=frozenset({"n", "addrs"}),
    high_inputs=frozenset({"reasons"}),
    expected_verified=True,
    paper=PaperRow("HashMap, put", "Key set", 129, 96, 10.37),
    instances=make_instances(
        {"n": 4, "addrs": (1, 2, 1, 3)},
        [{"reasons": (10, 20, 30, 40)}, {"reasons": (99, 98, 97, 96)}],
    ),
)

_SALES_BY_REGION_SRC = """
// Sales-By-Region: each thread writes only keys of its own region, so the
// unique put actions never conflict and the WHOLE map is low (Fig. 4 right).
m := alloc(emptyMap())
share MapDisjointPut
{
    i1 := 0
    while (i1 < n) {
        k1 := at(keysA, i1)
        v1 := at(valsA, i1)
        atomic [Put1(pair(k1, v1))] { m1 := [m]; [m] := put(m1, k1, v1) }
        i1 := i1 + 1
    }
} || {
    i2 := 0
    while (i2 < n) {
        k2 := at(keysB, i2)
        v2 := at(valsB, i2)
        atomic [Put2(pair(k2, v2))] { m2 := [m]; [m] := put(m2, k2, v2) }
        i2 := i2 + 1
    }
}
unshare MapDisjointPut
mv := [m]
print(mv)
"""

sales_by_region = CaseStudy(
    name="Sales-By-Region",
    description="unique per-region puts in disjoint key ranges; whole map low",
    source=_SALES_BY_REGION_SRC,
    resources=(
        ResourceDecl(
            "MapDisjointPut",
            map_disjoint_put_spec(ranges=(frozenset({1, 2}), frozenset({3, 4}))),
            "m",
        ),
    ),
    low_inputs=frozenset({"n", "keysA", "valsA", "keysB", "valsB"}),
    high_inputs=frozenset(),
    expected_verified=True,
    paper=PaperRow("HashMap, disjoint put", "None", 129, 104, 12.37),
    instances=make_instances(
        {"n": 2, "keysA": (1, 2), "valsA": (10, 20), "keysB": (3, 4), "valsB": (30, 40)},
        [{}],
    ),
)

_SALARY_HISTOGRAM_SRC = """
// Salary-Histogram: increment the employee count of a low salary bucket;
// the exact salary (and hence the bucket-lookup time) is secret.
m := alloc(emptyMap())
share MapHistogram
{
    i1 := 0
    while (i1 < n / 2) {
        b1 := at(buckets, i1)
        d1 := at(hsalary, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }
        atomic [IncBucket(b1)] { m1 := [m]; [m] := addToValue(m1, b1, 1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        b2 := at(buckets, i2)
        d2 := at(hsalary, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [IncBucket(b2)] { m2 := [m]; [m] := addToValue(m2, b2, 1) }
        i2 := i2 + 1
    }
}
unshare MapHistogram
mv := [m]
print(mv)
"""

salary_histogram = CaseStudy(
    name="Salary-Histogram",
    description="per-bucket increments commute even on equal keys",
    source=_SALARY_HISTOGRAM_SRC,
    resources=(ResourceDecl("MapHistogram", map_histogram_spec(), "m"),),
    low_inputs=frozenset({"n", "buckets"}),
    high_inputs=frozenset({"hsalary"}),
    expected_verified=True,
    paper=PaperRow("HashMap, increment value", "None", 135, 109, 13.78),
    instances=make_instances(
        {"n": 4, "buckets": (1, 2, 1, 1)},
        [{"hsalary": (0, 0, 0, 0)}, {"hsalary": (3, 1, 4, 1)}],
    ),
)

_COUNT_PURCHASES_SRC = """
// Count-Purchases: per-user purchase counters; what was bought is secret
// (and affects processing time), how many purchases is low.
m := alloc(emptyMap())
share MapAddValue
{
    i1 := 0
    while (i1 < n / 2) {
        u1 := at(users, i1)
        d1 := at(hitems, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }
        atomic [AddVal(pair(u1, 1))] { m1 := [m]; [m] := addToValue(m1, u1, 1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        u2 := at(users, i2)
        d2 := at(hitems, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [AddVal(pair(u2, 1))] { m2 := [m]; [m] := addToValue(m2, u2, 1) }
        i2 := i2 + 1
    }
}
unshare MapAddValue
mv := [m]
print(mv)
"""

count_purchases = CaseStudy(
    name="Count-Purchases",
    description="per-user counters accumulated by concurrent adds",
    source=_COUNT_PURCHASES_SRC,
    resources=(ResourceDecl("MapAddValue", map_add_value_spec(), "m"),),
    low_inputs=frozenset({"n", "users"}),
    high_inputs=frozenset({"hitems"}),
    expected_verified=True,
    paper=PaperRow("HashMap, add value", "None", 137, 109, 11.73),
    instances=make_instances(
        {"n": 4, "users": (1, 2, 1, 1)},
        [{"hitems": (0, 0, 0, 0)}, {"hitems": (2, 0, 5, 1)}],
    ),
)

_MOST_VALUABLE_PURCHASE_SRC = """
// Most-Valuable-Purchase: keep the maximum price per user; the conditional
// update commutes because max is associative-commutative.
m := alloc(emptyMap())
share MapPutMax
{
    i1 := 0
    while (i1 < n / 2) {
        u1 := at(users, i1)
        p1 := at(prices, i1)
        atomic [PutMax(pair(u1, p1))] {
            m1 := [m]
            if (containsKey(m1, u1)) {
                cur1 := get(m1, u1)
                if (p1 > cur1) { [m] := put(m1, u1, p1) }
            } else {
                [m] := put(m1, u1, p1)
            }
        }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        u2 := at(users, i2)
        p2 := at(prices, i2)
        atomic [PutMax(pair(u2, p2))] {
            m2 := [m]
            if (containsKey(m2, u2)) {
                cur2 := get(m2, u2)
                if (p2 > cur2) { [m] := put(m2, u2, p2) }
            } else {
                [m] := put(m2, u2, p2)
            }
        }
        i2 := i2 + 1
    }
}
unshare MapPutMax
mv := [m]
print(mv)
"""

most_valuable_purchase = CaseStudy(
    name="Most-Valuable-Purchase",
    description="conditional put keeping the per-user maximum price",
    source=_MOST_VALUABLE_PURCHASE_SRC,
    resources=(ResourceDecl("MapPutMax", map_put_if_greater_spec(), "m"),),
    low_inputs=frozenset({"n", "users", "prices"}),
    high_inputs=frozenset(),
    expected_verified=True,
    paper=PaperRow("HashMap, conditional put", "None", 140, 118, 17.87),
    instances=make_instances(
        {"n": 4, "users": (1, 2, 1, 2), "prices": (30, 10, 20, 50)},
        [{}],
    ),
)
