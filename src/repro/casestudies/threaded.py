"""Fork/join case studies (HyperViper's richer language, Sec. 5 / App. E).

HyperViper verifies dynamic threads created with ``fork``/``join`` (its
App. E encoding of Figure 3 forks one worker per input segment).  These
case studies replay that pattern on our pipeline: the program is written
with ``fork``/``join``, reduced to the paper's structured ``||`` calculus
by :mod:`repro.lang.desugar`, and then verified unchanged.

* **Figure 3 (fork/join)** — the App. E program: ``main`` forks two
  ``worker`` threads that put (low address, secret reason) pairs into a
  shared map, joins them, and prints the sorted key set.
* **Figure 2 (fork/join)** — the counter variant with dynamically created
  workers.
* **Leaky (fork/join)** — a negative control: a forked worker puts a
  *high* key into the map, which must be rejected after desugaring.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional, Tuple

from ..lang.parser import parse_threaded_program
from ..lang.procedures import ThreadedProgram
from ..lang.threads import ThreadedRunResult, run_threads
from ..verifier.declarations import ResourceDecl
from ..verifier.frontend import VerificationResult, verify_threaded
from .base import make_instances
from ..spec.library import integer_add_spec, map_put_keyset_spec


@dataclass(frozen=True)
class ThreadedCaseStudy:
    """A fork/join evaluation example."""

    name: str
    description: str
    source: str
    resources: Tuple[ResourceDecl, ...]
    low_inputs: frozenset
    high_inputs: frozenset
    expected_verified: bool
    instances: Optional[Callable[[], list]] = None

    def program(self) -> ThreadedProgram:
        return _parse_cached(self.source)

    def verify(self, **kwargs) -> VerificationResult:
        return verify_threaded(
            self.name,
            self.program(),
            self.resources,
            self.low_inputs,
            self.high_inputs,
            bounded_instances=self.instances,
            **kwargs,
        )

    def run(self, inputs: dict, scheduler=None) -> ThreadedRunResult:
        return run_threads(self.program(), inputs=inputs, scheduler=scheduler)


@lru_cache(maxsize=None)
def _parse_cached(source: str) -> ThreadedProgram:
    return parse_threaded_program(source)


_FIGURE3_FORKJOIN_SRC = """
// Figure 3, App. E style: main forks two workers over disjoint segments.
procedure worker(f, t, m, addrs, reasons) {
    i := f
    while (i < t) {
        adr := at(addrs, i)
        rsn := at(reasons, i)
        atomic [Put(pair(adr, rsn))] { mm := [m]; [m] := put(mm, adr, rsn) }
        i := i + 1
    }
}
m := alloc(emptyMap())
share MapKeySet
t1 := fork worker(0, n / 2, m, addrs, reasons)
t2 := fork worker(n / 2, n, m, addrs, reasons)
join worker(t1)
join worker(t2)
unshare MapKeySet
mv := [m]
print(sort(setToSeq(keys(mv))))
"""

figure3_forkjoin = ThreadedCaseStudy(
    name="Figure 3 (fork/join)",
    description="App. E: dynamically forked workers put into a shared map",
    source=_FIGURE3_FORKJOIN_SRC,
    resources=(ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",)),),
    low_inputs=frozenset({"n", "addrs"}),
    high_inputs=frozenset({"reasons"}),
    expected_verified=True,
    instances=make_instances(
        {"n": 4, "addrs": (1, 2, 1, 3)},
        [{"reasons": (10, 20, 30, 40)}, {"reasons": (99, 98, 97, 96)}],
    ),
)

_FIGURE2_FORKJOIN_SRC = """
// Figure 2, fork/join variant: workers add low target counts to a counter.
procedure worker(f, t, c, targets, hcollisions) {
    i := f
    while (i < t) {
        v := at(targets, i)
        d := at(hcollisions, i)
        k := 0
        while (k < d) { k := k + 1 }              // secret-dependent timing
        atomic [Add(v)] { s := [c]; [c] := s + v }
        i := i + 1
    }
}
c := alloc(0)
share IntegerAdd
t1 := fork worker(0, n / 2, c, targets, hcollisions)
t2 := fork worker(n / 2, n, c, targets, hcollisions)
join worker(t1)
join worker(t2)
unshare IntegerAdd
result := [c]
print(result)
"""

figure2_forkjoin = ThreadedCaseStudy(
    name="Figure 2 (fork/join)",
    description="dynamically forked workers add to a shared counter",
    source=_FIGURE2_FORKJOIN_SRC,
    resources=(ResourceDecl("IntegerAdd", integer_add_spec(), "c"),),
    low_inputs=frozenset({"n", "targets"}),
    high_inputs=frozenset({"hcollisions"}),
    expected_verified=True,
    instances=make_instances(
        {"n": 4, "targets": (2, 0, 1, 3)},
        [{"hcollisions": (0, 0, 0, 0)}, {"hcollisions": (4, 0, 1, 2)}],
    ),
)

_FORKJOIN_HIGH_KEY_SRC = """
// Negative control: the forked worker puts a HIGH key into the map; the
// printed key set then leaks the secret.
procedure worker(f, t, m, secrets) {
    i := f
    while (i < t) {
        s := at(secrets, i)
        atomic [Put(pair(s, 0))] { mm := [m]; [m] := put(mm, s, 0) }
        i := i + 1
    }
}
m := alloc(emptyMap())
share MapKeySet
t1 := fork worker(0, n / 2, m, secrets)
t2 := fork worker(n / 2, n, m, secrets)
join worker(t1)
join worker(t2)
unshare MapKeySet
mv := [m]
print(sort(setToSeq(keys(mv))))
"""

forkjoin_high_key = ThreadedCaseStudy(
    name="Fork/join high key",
    description="forked workers put a high key — must be rejected",
    source=_FORKJOIN_HIGH_KEY_SRC,
    resources=(ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",)),),
    low_inputs=frozenset({"n"}),
    high_inputs=frozenset({"secrets"}),
    expected_verified=False,
    instances=make_instances(
        {"n": 2},
        [{"secrets": (1, 2)}, {"secrets": (3, 4)}],
    ),
)

THREADED_CASES: tuple[ThreadedCaseStudy, ...] = (
    figure3_forkjoin,
    figure2_forkjoin,
    forkjoin_high_key,
)
