"""Negative controls: insecure programs the verifier must REJECT.

Each variant breaks exactly one of the four central properties (Sec. 2.2),
so the rejection reasons exercise every stage of the pipeline:

* ``figure1_leaky`` — the original Fig. 1 program with the racy value
  printed under an *identity* abstraction: the specification itself is
  invalid (writes do not commute);
* ``figure1_abstraction_leak`` — constant abstraction, but the program
  prints the raced value anyway: taint error at the output;
* ``map_value_leak`` — Fig. 3 but the whole map (values included) is
  printed: the key-set abstraction does not cover the output;
* ``map_high_key`` — Fig. 3 but the *keys* are secret: the Put
  precondition is violated, and bounded checking finds a concrete witness;
* ``unique_guard_split`` — Sales-By-Region but both threads use the same
  unique action: the unsplittable-guard discipline is violated;
* ``count_channel`` — the number of increments depends on a secret and
  the counter is printed: the retroactive count check refutes it.
"""

from __future__ import annotations

from ..spec.library import (
    assign_constant_abstraction_spec,
    assign_identity_abstraction_spec,
    counter_increment_spec,
    map_disjoint_put_spec,
    map_put_keyset_spec,
)
from ..verifier.declarations import ResourceDecl
from .base import CaseStudy, make_instances

_FIGURE1_LEAKY_SRC = """
// The original Figure 1: racing writes, result printed.
s := alloc(0)
t1 := 0
t2 := 0
share AssignIdentityAlpha
{
    while (t1 < 100) { t1 := t1 + 1 }
    atomic [SetTo(3)] { [s] := 3 }
} || {
    while (t2 < h) { t2 := t2 + 1 }
    atomic [SetTo(4)] { [s] := 4 }
}
unshare AssignIdentityAlpha
out := [s]
print(out)
"""

figure1_leaky = CaseStudy(
    name="Figure 1 (leaky)",
    description="original Fig. 1: identity abstraction is invalid (no commutativity)",
    source=_FIGURE1_LEAKY_SRC,
    resources=(ResourceDecl("AssignIdentityAlpha", assign_identity_abstraction_spec(), "s"),),
    low_inputs=frozenset(),
    high_inputs=frozenset({"h"}),
    expected_verified=False,
    instances=make_instances({}, [{"h": 0}, {"h": 150}]),
)

_FIGURE1_ABSTRACTION_LEAK_SRC = """
// Constant abstraction, but the program prints the raced value anyway.
s := alloc(0)
t1 := 0
t2 := 0
share AssignConstantAlpha
{
    while (t1 < 100) { t1 := t1 + 1 }
    atomic [SetTo(3)] { [s] := 3 }
} || {
    while (t2 < h) { t2 := t2 + 1 }
    atomic [SetTo(4)] { [s] := 4 }
}
unshare AssignConstantAlpha
out := [s]
print(out)
"""

figure1_abstraction_leak = CaseStudy(
    name="Figure 1 (abstraction leak)",
    description="valid constant-abstraction spec, but the raced value is printed",
    source=_FIGURE1_ABSTRACTION_LEAK_SRC,
    resources=(ResourceDecl("AssignConstantAlpha", assign_constant_abstraction_spec(), "s"),),
    low_inputs=frozenset(),
    high_inputs=frozenset({"h"}),
    expected_verified=False,
    instances=make_instances({}, [{"h": 0}, {"h": 150}]),
)

_MAP_VALUE_LEAK_SRC = """
// Figure 3 variant that leaks the VALUES of the map, not just its keys.
m := alloc(emptyMap())
share MapKeySet
{
    i1 := 0
    while (i1 < n / 2) {
        adr1 := at(addrs, i1)
        rsn1 := at(reasons, i1)
        atomic [Put(pair(adr1, rsn1))] { m1 := [m]; [m] := put(m1, adr1, rsn1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        adr2 := at(addrs, i2)
        rsn2 := at(reasons, i2)
        atomic [Put(pair(adr2, rsn2))] { m2 := [m]; [m] := put(m2, adr2, rsn2) }
        i2 := i2 + 1
    }
}
unshare MapKeySet
mv := [m]
print(mapValues(mv))
"""

map_value_leak = CaseStudy(
    name="Figure 3 (value leak)",
    description="prints map values; only the key set is covered by the abstraction",
    source=_MAP_VALUE_LEAK_SRC,
    resources=(ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",)),),
    low_inputs=frozenset({"n", "addrs"}),
    high_inputs=frozenset({"reasons"}),
    expected_verified=False,
    instances=make_instances(
        {"n": 2, "addrs": (1, 2)},
        [{"reasons": (10, 20)}, {"reasons": (99, 98)}],
    ),
)

_MAP_HIGH_KEY_SRC = """
// Figure 3 variant where the KEYS are secret: Put's precondition fails.
m := alloc(emptyMap())
share MapKeySet
{
    i1 := 0
    while (i1 < n / 2) {
        adr1 := at(hkeys, i1)
        atomic [Put(pair(adr1, 0))] { m1 := [m]; [m] := put(m1, adr1, 0) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        adr2 := at(hkeys, i2)
        atomic [Put(pair(adr2, 0))] { m2 := [m]; [m] := put(m2, adr2, 0) }
        i2 := i2 + 1
    }
}
unshare MapKeySet
mv := [m]
print(sort(setToSeq(keys(mv))))
"""

map_high_key = CaseStudy(
    name="Figure 3 (high key)",
    description="secret keys flow into the (public) key set",
    source=_MAP_HIGH_KEY_SRC,
    resources=(ResourceDecl("MapKeySet", map_put_keyset_spec(), "m", low_views=("keys",)),),
    low_inputs=frozenset({"n"}),
    high_inputs=frozenset({"hkeys"}),
    expected_verified=False,
    instances=make_instances(
        {"n": 2},
        [{"hkeys": (1, 2)}, {"hkeys": (3, 4)}],
    ),
)

_UNIQUE_GUARD_SPLIT_SRC = """
// Sales-By-Region variant where BOTH threads use the unique action Put1.
m := alloc(emptyMap())
share MapDisjointPut
{
    atomic [Put1(pair(1, 10))] { m1 := [m]; [m] := put(m1, 1, 10) }
} || {
    atomic [Put1(pair(2, 20))] { m2 := [m]; [m] := put(m2, 2, 20) }
}
unshare MapDisjointPut
mv := [m]
print(mv)
"""

unique_guard_split = CaseStudy(
    name="Sales-By-Region (guard split)",
    description="a unique action used by two threads — the guard cannot be split",
    source=_UNIQUE_GUARD_SPLIT_SRC,
    resources=(
        ResourceDecl(
            "MapDisjointPut",
            map_disjoint_put_spec(ranges=(frozenset({1, 2}), frozenset({3, 4}))),
            "m",
        ),
    ),
    low_inputs=frozenset(),
    high_inputs=frozenset(),
    expected_verified=False,
    instances=make_instances({}, [{}]),
)

_COUNT_CHANNEL_SRC = """
// The number of increments depends on the secret; the counter is printed.
c := alloc(0)
share CounterInc
{
    if (h > 0) {
        atomic [Inc()] { t1 := [c]; [c] := t1 + 1 }
    }
} || {
    atomic [Inc()] { t2 := [c]; [c] := t2 + 1 }
}
unshare CounterInc
out := [c]
print(out)
"""

count_channel = CaseStudy(
    name="Count-Channel",
    description="secret-dependent number of increments leaks through the count",
    source=_COUNT_CHANNEL_SRC,
    resources=(ResourceDecl("CounterInc", counter_increment_spec(), "c"),),
    low_inputs=frozenset(),
    high_inputs=frozenset({"h"}),
    expected_verified=False,
    instances=make_instances({}, [{"h": 0}, {"h": 1}]),
)
