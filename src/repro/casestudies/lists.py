"""List-append case studies (Table 1 rows 5–8).

All four share one data structure (a shared list built by concurrent
appends) and differ only in the *abstraction* — the key demonstration of
abstract commutativity: concurrent appends never commute on the concrete
list, but they commute under the mean, multiset, length, and sum views.
"""

from __future__ import annotations

from ..spec.library import (
    list_append_length_spec,
    list_append_mean_spec,
    list_append_multiset_spec,
    list_append_sum_spec,
)
from ..verifier.declarations import ResourceDecl
from .base import CaseStudy, PaperRow, make_instances

_MEAN_SALARY_SRC = """
// Mean-Salary: collect (name, salary) pairs; leak only the mean salary.
lst := alloc(seq())
share ListMean
{
    i1 := 0
    while (i1 < n / 2) {
        nm1 := at(names, i1)
        sa1 := at(salaries, i1)
        atomic [Append(pair(nm1, sa1))] { l1 := [lst]; [lst] := append(l1, pair(nm1, sa1)) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        nm2 := at(names, i2)
        sa2 := at(salaries, i2)
        atomic [Append(pair(nm2, sa2))] { l2 := [lst]; [lst] := append(l2, pair(nm2, sa2)) }
        i2 := i2 + 1
    }
}
unshare ListMean
l := [lst]
print(meanStats(l))
"""

mean_salary = CaseStudy(
    name="Mean-Salary",
    description="append (secret name, low salary); leak only (sum, count)",
    source=_MEAN_SALARY_SRC,
    resources=(ResourceDecl("ListMean", list_append_mean_spec(), "lst", low_views=("meanStats",)),),
    low_inputs=frozenset({"n", "salaries"}),
    high_inputs=frozenset({"names"}),
    expected_verified=True,
    paper=PaperRow("List, append", "Mean", 80, 84, 14.10),
    instances=make_instances(
        {"n": 4, "salaries": (50, 60, 70, 80)},
        [{"names": (1, 2, 3, 4)}, {"names": (9, 8, 7, 6)}],
    ),
)

_EMAIL_METADATA_SRC = """
// Email-Metadata: collect low (sender, timestamp) records; the processing
// delay per message is secret, so the list ORDER is tainted — but the
// multiset is not, and sorting erases the order before output.
lst := alloc(seq())
share ListMultiset
{
    i1 := 0
    while (i1 < n / 2) {
        m1 := pair(at(senders, i1), at(stamps, i1))
        d1 := at(hdelay, i1)
        k1 := 0
        while (k1 < d1) { k1 := k1 + 1 }
        atomic [Append(m1)] { l1 := [lst]; [lst] := append(l1, m1) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        m2 := pair(at(senders, i2), at(stamps, i2))
        d2 := at(hdelay, i2)
        k2 := 0
        while (k2 < d2) { k2 := k2 + 1 }
        atomic [Append(m2)] { l2 := [lst]; [lst] := append(l2, m2) }
        i2 := i2 + 1
    }
}
unshare ListMultiset
l := [lst]
print(sort(l))
"""

email_metadata = CaseStudy(
    name="Email-Metadata",
    description="append low records; leak the sorted list (multiset view)",
    source=_EMAIL_METADATA_SRC,
    resources=(
        ResourceDecl("ListMultiset", list_append_multiset_spec(), "lst", low_views=("sort", "toMultiset")),
    ),
    low_inputs=frozenset({"n", "senders", "stamps"}),
    high_inputs=frozenset({"hdelay"}),
    expected_verified=True,
    paper=PaperRow("List, append", "Multiset", 82, 75, 16.70),
    instances=make_instances(
        {"n": 4, "senders": (3, 1, 2, 1), "stamps": (10, 11, 12, 13)},
        [{"hdelay": (0, 0, 0, 0)}, {"hdelay": (5, 0, 3, 1)}],
    ),
)

_PATIENT_STATISTIC_SRC = """
// Patient-Statistic: collect entirely secret patient records; leak only
// how many were collected.
lst := alloc(seq())
share ListLength
{
    i1 := 0
    while (i1 < n / 2) {
        if (at(include, i1) == 1) {
            r1 := at(records, i1)
            atomic [Append(r1)] { l1 := [lst]; [lst] := append(l1, r1) }
        }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        if (at(include, i2) == 1) {
            r2 := at(records, i2)
            atomic [Append(r2)] { l2 := [lst]; [lst] := append(l2, r2) }
        }
        i2 := i2 + 1
    }
}
unshare ListLength
l := [lst]
print(len(l))
"""

patient_statistic = CaseStudy(
    name="Patient-Statistic",
    description="append secret records; leak only the count",
    source=_PATIENT_STATISTIC_SRC,
    resources=(ResourceDecl("ListLength", list_append_length_spec(), "lst", low_views=("len",)),),
    low_inputs=frozenset({"n", "include"}),
    high_inputs=frozenset({"records"}),
    expected_verified=True,
    paper=PaperRow("List, append", "Length", 73, 70, 4.92),
    instances=make_instances(
        {"n": 4, "include": (1, 0, 1, 1)},
        [{"records": (7, 8, 9, 10)}, {"records": (70, 80, 90, 100)}],
    ),
)

_DEBT_SUM_SRC = """
// Debt-Sum: collect (secret creditor, low amount) pairs; leak the total.
lst := alloc(seq())
share ListSum
{
    i1 := 0
    while (i1 < n / 2) {
        cr1 := at(creditors, i1)
        am1 := at(amounts, i1)
        atomic [Append(pair(cr1, am1))] { l1 := [lst]; [lst] := append(l1, pair(cr1, am1)) }
        i1 := i1 + 1
    }
} || {
    i2 := n / 2
    while (i2 < n) {
        cr2 := at(creditors, i2)
        am2 := at(amounts, i2)
        atomic [Append(pair(cr2, am2))] { l2 := [lst]; [lst] := append(l2, pair(cr2, am2)) }
        i2 := i2 + 1
    }
}
unshare ListSum
l := [lst]
print(debtSum(l))
"""

debt_sum = CaseStudy(
    name="Debt-Sum",
    description="append (secret creditor, low amount); leak the sum",
    source=_DEBT_SUM_SRC,
    resources=(ResourceDecl("ListSum", list_append_sum_spec(), "lst", low_views=("debtSum",)),),
    low_inputs=frozenset({"n", "amounts"}),
    high_inputs=frozenset({"creditors"}),
    expected_verified=True,
    paper=PaperRow("List, append", "Sum", 76, 81, 14.45),
    instances=make_instances(
        {"n": 4, "amounts": (100, 25, 0, 40)},
        [{"creditors": (1, 2, 3, 4)}, {"creditors": (4, 4, 4, 4)}],
    ),
)
