"""repro — a reproduction of CommCSL / HyperViper (PLDI 2023).

*CommCSL: Proving Information Flow Security for Concurrent Programs using
Abstract Commutativity* by Eilers, Dardinier, and Müller.

The package is organized as:

* :mod:`repro.lang` — the concurrent object language (AST, parser,
  small-step semantics, schedulers, interpreter);
* :mod:`repro.heap` — extended heaps: fractional permissions and guards;
* :mod:`repro.assertions` — the relational assertion language;
* :mod:`repro.spec` — resource specifications, validity (abstract
  commutativity) checking, and the catalogue used by the evaluation;
* :mod:`repro.logic` — the CommCSL proof rules and proof checking;
* :mod:`repro.smt` — the in-house term language and bounded solver
  (substitute for Viper/Z3);
* :mod:`repro.verifier` — the automated relational verifier (the
  HyperViper analogue);
* :mod:`repro.security` — empirical non-interference testing and leakage
  quantification;
* :mod:`repro.casestudies` — the 18 evaluation examples of Table 1 plus
  insecure negative controls.
"""

__version__ = "1.0.0"
