"""Verification-as-a-service: the long-lived asyncio daemon.

Everything expensive in this repository is reusable across queries —
interned term tables (:mod:`repro.smt.intern`), incremental
:class:`~repro.smt.session.SolverSession` s with assumption-activated
VCs, the in-memory + persistent validity cache
(:mod:`repro.smt.cache`) — but a ``python -m repro`` invocation pays
cold-start for all of it.  :class:`VerificationServer` keeps that warm
state alive behind a batched request API:

* **Transport** — a unix socket first (``python -m repro serve --socket
  PATH``), optionally localhost TCP (``--host/--port``).  Framing is
  JSON lines: one JSON object per ``\\n``-terminated line, each request
  answered by a stream of event objects ending in ``done`` — the wire
  schema is exactly the ``to_wire``/``from_wire`` surface of
  :mod:`repro.api`.
* **Warm state** — one :class:`~repro.smt.session.SessionPool` keyed by
  tenant (LRU + clause-bloat eviction) and one server-owned
  :class:`~repro.smt.cache.ValidityCache` (loaded from ``--cache-dir``
  at boot, saved after every batch and at shutdown).  A batch's
  requests run back-to-back on the tenant's pooled session, so
  compatible obligations land in the same incremental sub-session and
  later requests reuse earlier learned clauses; the second batch of the
  same VCs is served almost entirely from warm state.
* **Multi-tenancy** — cache entries are namespaced per tenant on top of
  the fingerprint keys of :func:`repro.smt.cache.term_fingerprint`;
  tenants can carry sort overrides (applied to their raw formula
  queries) and per-tenant solver budgets (``max_models``), configured
  over the wire with the ``tenant`` op.
* **Admission control** — a per-request VC budget
  (:func:`repro.api.estimate_vc_count`, purely syntactic, so rejection
  happens before any solving) plus a per-request wall-clock timeout.
  Verification is CPU-bound Python, so all solving is serialized on one
  dedicated worker thread; on timeout the worker is *abandoned* (a
  fresh one takes over) and the tenant's session is retired from the
  pool (:meth:`~repro.smt.session.SessionPool.retire` — the next
  request starts on a clean session, and the doomed session's
  assumption literals are never reused), so one pathological VC cannot
  starve the pool.

Protocol ops (client → server)::

    {"op": "ping", "id": ...}
    {"op": "stats", "id": ...}
    {"op": "tenant", "tenant": "t", "namespace": ..., "vc_budget": ...,
     "max_models": ..., "sorts": {"x": "int"}}
    {"op": "batch", "id": ..., "tenant": "t", "requests": [<request>...]}
    {"op": "shutdown"}

Server → client events: ``pong``, ``stats``, ``tenant``, ``accepted``,
``verdict`` (one per request, streamed as each lands), ``rejected``,
``timeout``, ``error``, ``done`` (with served stats), ``bye``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from . import api
from .smt.cache import ValidityCache, using_cache
from .smt.session import SessionPool, SolverSession
from .smt.sorts import Sort

#: Default per-request verification-condition budget (admission control).
DEFAULT_VC_BUDGET = 256
#: Default per-request wall-clock budget, seconds.
DEFAULT_TIMEOUT = 120.0
#: Default cap on requests per batch.
DEFAULT_BATCH_LIMIT = 64


@dataclass
class TenantConfig:
    """Per-tenant policy: cache namespace, solver budget, sort overrides."""

    name: str
    namespace: str = ""
    vc_budget: Optional[int] = None
    max_models: Optional[int] = None
    sort_overrides: Dict[str, Sort] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.namespace:
            self.namespace = self.name

    def session_factory(self):
        if self.max_models is None:
            return None
        max_models = self.max_models
        return lambda: SolverSession(max_models=max_models)


@dataclass
class _TenantState:
    config: TenantConfig
    batches: int = 0
    requests: int = 0
    rejected: int = 0
    timeouts: int = 0


class VerificationServer:
    """The daemon.  Construct, then either ``run()`` (blocking, owns the
    event loop) or ``await start()`` inside an existing loop."""

    def __init__(
        self,
        socket_path: Optional[Any] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        cache_dir: Optional[Any] = None,
        max_sessions: int = 8,
        max_live_clauses: Optional[int] = 200_000,
        vc_budget: int = DEFAULT_VC_BUDGET,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if socket_path is None and host is None:
            raise ValueError("a unix socket path or a host/port is required")
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.vc_budget = vc_budget
        self.batch_limit = batch_limit
        self.timeout = timeout

        self.pool = SessionPool(
            max_sessions=max_sessions, max_live_clauses=max_live_clauses
        )
        #: The server-owned cache — an explicit handle, not the process
        #: GLOBAL: it is installed scoped around each request execution.
        self.cache = ValidityCache()
        self._cache_path: Optional[Path] = None
        self._tenants: Dict[str, _TenantState] = {}
        self._evictions: list = []
        self.pool.on_evict(
            lambda tenant, _session, reason: self._evictions.append((tenant, reason))
        )

        self._servers: list = []
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._shutdown = asyncio.Event()
        self._started = 0.0
        self.batches_served = 0
        self.requests_served = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._started = time.monotonic()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-verify"
        )
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._cache_path = self.cache_dir / api.CACHE_FILENAME
            self.cache.load(self._cache_path)
        else:
            # Still fingerprint decisive results: served stats expose
            # persistent_size/persistent_hits even without a disk store.
            self.cache.enable_persistence()
        if self.socket_path is not None:
            if self.socket_path.exists():
                self.socket_path.unlink()
            server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path)
            )
            self._servers.append(server)
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port or 0
            )
            self._servers.append(server)

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._cache_path is not None:
            self.cache.save(self._cache_path)
        if self.socket_path is not None and self.socket_path.exists():
            self.socket_path.unlink()

    async def serve_forever(self) -> None:
        """Wait (inside a running loop, after :meth:`start`) until a
        ``shutdown`` op arrives."""
        await self._shutdown.wait()

    def run(self, announce: bool = False) -> None:
        """Blocking entry point: serve until a ``shutdown`` op (or
        KeyboardInterrupt), then flush the cache and clean up.
        ``announce`` prints the bound endpoints once listening."""

        async def _main() -> None:
            await self.start()
            if announce:
                print(
                    f"repro daemon listening on {', '.join(self.endpoints)}",
                    flush=True,
                )
            try:
                await self.serve_forever()
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    @property
    def endpoints(self) -> Tuple[str, ...]:
        names = []
        if self.socket_path is not None:
            names.append(f"unix:{self.socket_path}")
        for server in self._servers:
            for sock in server.sockets or ():
                try:
                    addr = sock.getsockname()
                except OSError:
                    continue
                if isinstance(addr, tuple):
                    names.append(f"tcp:{addr[0]}:{addr[1]}")
        return tuple(names)

    # -- tenancy ----------------------------------------------------------

    def tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(config=TenantConfig(name=name))
            self._tenants[name] = state
        return state

    def configure_tenant(
        self,
        name: str,
        namespace: Optional[str] = None,
        vc_budget: Optional[int] = None,
        max_models: Optional[int] = None,
        sorts: Optional[Mapping[str, str]] = None,
    ) -> TenantConfig:
        """Install per-tenant policy (also reachable over the wire via
        the ``tenant`` op).  Reconfiguring retires any pooled session so
        new policy (e.g. ``max_models``) takes effect immediately."""
        state = self.tenant(name)
        config = state.config
        if namespace is not None:
            config.namespace = namespace
        if vc_budget is not None:
            config.vc_budget = vc_budget
        if max_models is not None:
            config.max_models = max_models
        if sorts is not None:
            config.sort_overrides = {
                var: api.sort_from_wire(sort_name) for var, sort_name in sorts.items()
            }
        self.pool.retire(name)
        return config

    # -- stats ------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "uptime": time.monotonic() - self._started,
            "batches": self.batches_served,
            "requests": self.requests_served,
            "pool": self.pool.stats(),
            "cache": self.cache.stats(),
            "evictions": list(self._evictions),
            "tenants": {
                name: {
                    "batches": state.batches,
                    "requests": state.requests,
                    "rejected": state.rejected,
                    "timeouts": state.timeouts,
                    "namespace": state.config.namespace,
                }
                for name, state in self._tenants.items()
            },
        }

    # -- protocol ---------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except json.JSONDecodeError as error:
                    await self._emit(writer, {"event": "error", "reason": f"bad JSON: {error}"})
                    continue
                if not isinstance(message, dict):
                    await self._emit(
                        writer, {"event": "error", "reason": "message must be a JSON object"}
                    )
                    continue
                stop = await self._dispatch(message, writer)
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _emit(self, writer: asyncio.StreamWriter, obj: Dict[str, Any]) -> None:
        writer.write(json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, message: dict, writer: asyncio.StreamWriter) -> bool:
        """Handle one op; returns True when the connection should close."""
        op = message.get("op")
        ident = message.get("id")

        def tag(obj: Dict[str, Any]) -> Dict[str, Any]:
            if ident is not None:
                obj["id"] = ident
            return obj

        if op == "ping":
            await self._emit(writer, tag({"event": "pong"}))
            return False
        if op == "stats":
            await self._emit(writer, tag({"event": "stats", "stats": self.stats()}))
            return False
        if op == "shutdown":
            await self._emit(writer, tag({"event": "bye"}))
            self._shutdown.set()
            return True
        if op == "tenant":
            name = message.get("tenant")
            if not isinstance(name, str) or not name:
                await self._emit(
                    writer, tag({"event": "error", "reason": "tenant op needs a tenant name"})
                )
                return False
            try:
                config = self.configure_tenant(
                    name,
                    namespace=message.get("namespace"),
                    vc_budget=message.get("vc_budget"),
                    max_models=message.get("max_models"),
                    sorts=message.get("sorts"),
                )
            except api.RequestError as error:
                await self._emit(writer, tag({"event": "error", "reason": str(error)}))
                return False
            await self._emit(
                writer,
                tag(
                    {
                        "event": "tenant",
                        "tenant": name,
                        "namespace": config.namespace,
                        "vc_budget": config.vc_budget,
                        "max_models": config.max_models,
                    }
                ),
            )
            return False
        if op == "batch":
            await self._handle_batch(message, writer, tag)
            return False
        await self._emit(writer, tag({"event": "error", "reason": f"unknown op {op!r}"}))
        return False

    async def _handle_batch(self, message: dict, writer, tag) -> None:
        tenant_name = message.get("tenant") or "default"
        state = self.tenant(tenant_name)
        raw_requests = message.get("requests")
        if not isinstance(raw_requests, list):
            await self._emit(
                writer, tag({"event": "error", "reason": "batch needs a requests list"})
            )
            return
        if len(raw_requests) > self.batch_limit:
            state.rejected += len(raw_requests)
            await self._emit(
                writer,
                tag(
                    {
                        "event": "rejected",
                        "reason": f"batch of {len(raw_requests)} exceeds the "
                        f"limit of {self.batch_limit}",
                    }
                ),
            )
            return

        start = time.perf_counter()
        state.batches += 1
        self.batches_served += 1
        await self._emit(writer, tag({"event": "accepted", "count": len(raw_requests)}))

        budget = (
            state.config.vc_budget
            if state.config.vc_budget is not None
            else self.vc_budget
        )
        loop = asyncio.get_running_loop()
        for index, raw in enumerate(raw_requests):
            # Parse + admission control, both cheap and purely syntactic.
            try:
                request = api.VerificationRequest.from_wire(raw)
                estimate = self._admit(request, budget)
            except api.RequestError as error:
                await self._emit(
                    writer, tag({"event": "error", "index": index, "reason": str(error)})
                )
                continue
            if estimate is not None:
                state.rejected += 1
                await self._emit(
                    writer,
                    tag({"event": "rejected", "index": index, "reason": estimate}),
                )
                continue

            task = loop.run_in_executor(
                self._executor, self._run_request, state, request
            )
            try:
                outcome = await asyncio.wait_for(task, timeout=self.timeout)
            except asyncio.TimeoutError:
                state.timeouts += 1
                self._abandon_worker(tenant_name)
                await self._emit(
                    writer,
                    tag(
                        {
                            "event": "timeout",
                            "index": index,
                            "reason": f"request exceeded the {self.timeout:.0f}s "
                            f"wall-clock budget; session retired",
                        }
                    ),
                )
                continue
            state.requests += 1
            self.requests_served += 1
            if isinstance(outcome, api.Verdict):
                await self._emit(
                    writer,
                    tag({"event": "verdict", "index": index, "verdict": outcome.to_wire()}),
                )
            else:
                await self._emit(
                    writer, tag({"event": "error", "index": index, "reason": str(outcome)})
                )

        # elapsed measures request processing; the cache flush that
        # follows is bookkeeping whose cost grows with the whole store.
        elapsed = time.perf_counter() - start
        if self._cache_path is not None:
            self.cache.save(self._cache_path)
        await self._emit(
            writer,
            tag({"event": "done", "elapsed": elapsed, "stats": self.stats()}),
        )

    # -- execution --------------------------------------------------------

    def _admit(self, request: api.VerificationRequest, budget: int) -> Optional[str]:
        """None when admitted, else the human-readable rejection reason."""
        estimate = api.estimate_vc_count(request)
        if estimate > budget:
            return (
                f"request {request.label()!r} estimates {estimate} VCs, "
                f"over the admission budget of {budget}"
            )
        return None

    def _run_request(self, state: _TenantState, request: api.VerificationRequest):
        """Executor-thread body: run one request on the tenant's pooled
        session under the tenant's cache namespace.  Returns a Verdict,
        or the error to report."""
        config = state.config
        tenant = config.name
        try:
            with using_cache(self.cache), self.cache.namespaced(config.namespace):
                session = self.pool.acquire(tenant, factory=config.session_factory())
                try:
                    return api.execute(
                        request,
                        session=session,
                        sorts=config.sort_overrides or None,
                    )
                finally:
                    self.pool.release(tenant)
        except api.RequestError as error:
            return error
        except Exception as error:  # noqa: BLE001 — a crashed VC must not kill the daemon
            self.pool.retire(tenant)
            return f"internal error: {type(error).__name__}: {error}"

    def _abandon_worker(self, tenant: str) -> None:
        """A request blew its wall-clock budget: abandon the (stuck)
        worker thread, start a fresh executor, and retire the tenant's
        session so the next request starts clean."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-verify"
        )
        self.pool.retire(tenant)


__all__ = [
    "DEFAULT_BATCH_LIMIT",
    "DEFAULT_TIMEOUT",
    "DEFAULT_VC_BUDGET",
    "TenantConfig",
    "VerificationServer",
]
