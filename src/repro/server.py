"""Verification-as-a-service: the long-lived asyncio daemon.

Everything expensive in this repository is reusable across queries —
interned term tables (:mod:`repro.smt.intern`), incremental
:class:`~repro.smt.session.SolverSession` s with assumption-activated
VCs, the in-memory + persistent validity cache
(:mod:`repro.smt.cache`) — but a ``python -m repro`` invocation pays
cold-start for all of it.  :class:`VerificationServer` keeps that warm
state alive behind a batched request API:

* **Transport** — a unix socket first (``python -m repro serve --socket
  PATH``), optionally localhost TCP (``--host/--port``).  Framing is
  JSON lines: one JSON object per ``\\n``-terminated line, each request
  answered by a stream of event objects ending in ``done`` — the wire
  schema is exactly the ``to_wire``/``from_wire`` surface of
  :mod:`repro.api` (event kinds are catalogued in
  :data:`repro.api.WIRE_EVENTS`).
* **A supervised process pool** — solving is CPU-bound Python, so the
  daemon runs one warm *worker process* per slot
  (:func:`repro.worker.worker_main`), each holding its own
  :class:`~repro.smt.session.SessionPool` of per-tenant sessions and a
  worker-local validity cache seeded from the supervisor's store at
  spawn.  Routing is **tenant-affine**: a tenant's batches keep hitting
  the same worker (first touch picks the least-loaded slot), so its
  learned clauses, Tseitin definitions and cache entries stay warm,
  while batches from *different* tenants solve genuinely concurrently
  in separate processes.  Every worker reply ships its cache delta,
  which the supervisor merges into the server-owned store
  (:meth:`~repro.smt.cache.ValidityCache.merge` — the
  :mod:`repro.parallel` delta machinery) and re-seeds into every
  later spawn.
* **Real timeout interruption** — a request over its wall-clock budget
  gets its worker process SIGKILLed (the PID is gone, the CPU returns
  to idle), a fresh worker is spawned in the slot, and the client gets
  a ``timeout`` event.  Only the sessions living in that worker are
  lost; other workers' in-flight requests never notice.
* **Crash isolation** — a worker dying mid-request (segfault, OOM
  kill, broken pipe) is detected by the supervisor, counted in
  ``stats["worker_crashes"]``, and the request is transparently
  retried **once** on the freshly spawned worker (verdicts are
  deterministic and cache-keyed, so the retry is idempotent); a second
  failure answers the client with a structured ``worker_crash`` event.
  Either way the client connection stays live and the daemon stays
  serviceable.
* **Admission control & load shedding** — a per-request VC budget
  (:func:`repro.api.estimate_vc_count`, purely syntactic, so rejection
  happens before any solving) plus a *queue deadline*: when the
  tenant's affine worker stays busy past it, the request is shed with
  a ``retry_after`` event (counted in ``stats["load_shed"]``) instead
  of queueing unboundedly — :class:`repro.client.ServiceClient`
  retries those with bounded backoff.
* **Multi-tenancy** — cache entries are namespaced per tenant on top
  of the fingerprint keys of :func:`repro.smt.cache.term_fingerprint`;
  tenants can carry sort overrides and per-tenant solver budgets
  (``max_models``), configured over the wire with the ``tenant`` op.

* **Static pre-verification on the admission path** — a request whose
  VC estimate is over budget gets one more chance: when the static
  prepass of :mod:`repro.analysis` proves it secure, the worker will
  discharge it without ever touching the solver, so the VC estimate is
  moot and the request is admitted anyway (counted in
  ``stats["prepass_admissions"]``).  The daemon also answers ``lint``
  ops supervisor-side — static analysis only, no worker round-trip.

Protocol ops (client → server)::

    {"op": "ping", "id": ...}
    {"op": "stats", "id": ...}
    {"op": "tenant", "tenant": "t", "namespace": ..., "vc_budget": ...,
     "max_models": ..., "sorts": {"x": "int"}}
    {"op": "batch", "id": ..., "tenant": "t", "requests": [<request>...]}
    {"op": "lint", "id": ..., "sources": [{"name": ..., "text": ...}],
     "cases": [<case name>...], "low": [...], "high": [...]}
    {"op": "shutdown"}

Server → client events: ``pong``, ``stats``, ``tenant``, ``accepted``,
``verdict`` (one per request, streamed as each lands), ``rejected``,
``retry_after``, ``timeout``, ``worker_crash``, ``lint``, ``error``,
``done`` (with served stats), ``bye``.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from . import api
from .analysis import lint_case, run_lint, sort_diagnostics, target_from_source
from .smt.session import merge_pool_stats
from .smt.cache import ValidityCache
from .worker import worker_main

#: Default per-request verification-condition budget (admission control).
DEFAULT_VC_BUDGET = 256
#: Default per-request wall-clock budget, seconds.
DEFAULT_TIMEOUT = 120.0
#: Default cap on requests per batch.
DEFAULT_BATCH_LIMIT = 64
#: Default worker-process count.
DEFAULT_WORKERS = 2
#: Default admission deadline: how long a request may wait for its
#: tenant's busy worker before being shed with ``retry_after``.
DEFAULT_QUEUE_DEADLINE = 30.0

#: Sentinels for worker-call outcomes.
_CRASHED = object()
_TIMED_OUT = object()


def _mp_context():
    """Fork when available (workers inherit the warm interned tables for
    free); spawn elsewhere.  The repo already forks under pytest via
    :mod:`repro.parallel`, so this is established behaviour."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-fork platform
        return multiprocessing.get_context()


def _recv_blocking(conn):
    """Executor-thread body: one blocking pipe read.  A dead peer (the
    worker was killed, crashed, or OOM-killed) surfaces as EOF/OSError —
    normalized to the crash sentinel so the event loop can tell 'reply'
    from 'worker gone'."""
    try:
        return conn.recv()
    except (EOFError, OSError):
        return _CRASHED


@dataclass
class TenantConfig:
    """Per-tenant policy: cache namespace, solver budget, sort overrides
    (kept in wire form — Sort objects are rebuilt worker-side)."""

    name: str
    namespace: str = ""
    vc_budget: Optional[int] = None
    max_models: Optional[int] = None
    sorts: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.namespace:
            self.namespace = self.name


@dataclass
class _TenantState:
    config: TenantConfig
    batches: int = 0
    requests: int = 0
    rejected: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    retries: int = 0
    load_shed: int = 0


class _WorkerHandle:
    """One supervisor slot: the live process + pipe + busy lock, plus
    the last stats snapshot its replies piggybacked."""

    __slots__ = ("index", "proc", "conn", "lock", "spawns", "seq", "last_stats")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc = None
        self.conn = None
        self.lock = asyncio.Lock()
        self.spawns = 0
        self.seq = 0
        self.last_stats: Dict[str, Any] = {}

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class VerificationServer:
    """The daemon.  Construct, then either ``run()`` (blocking, owns the
    event loop) or ``await start()`` inside an existing loop."""

    def __init__(
        self,
        socket_path: Optional[Any] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        cache_dir: Optional[Any] = None,
        max_sessions: int = 8,
        max_live_clauses: Optional[int] = 200_000,
        vc_budget: int = DEFAULT_VC_BUDGET,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        timeout: float = DEFAULT_TIMEOUT,
        workers: int = DEFAULT_WORKERS,
        queue_deadline: float = DEFAULT_QUEUE_DEADLINE,
        fault_injection: bool = False,
    ) -> None:
        if socket_path is None and host is None:
            raise ValueError("a unix socket path or a host/port is required")
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_sessions = max_sessions
        self.max_live_clauses = max_live_clauses
        self.vc_budget = vc_budget
        self.batch_limit = batch_limit
        self.timeout = timeout
        self.queue_deadline = queue_deadline
        self.fault_injection = fault_injection

        #: The server-owned cache — the authoritative merged store.
        #: Workers solve against their own copies seeded from this one
        #: at spawn; their per-reply deltas are merged back here.
        self.cache = ValidityCache()
        self._cache_path: Optional[Path] = None
        self._tenants: Dict[str, _TenantState] = {}

        self._workers: List[_WorkerHandle] = [
            _WorkerHandle(index) for index in range(max(1, workers))
        ]
        self._affinity: Dict[str, int] = {}
        #: Counter accumulators for workers that died (their last
        #: snapshot would otherwise vanish from aggregated stats).
        self._dead_pool: Dict[str, int] = {}
        self._dead_cache: Dict[str, int] = {}

        self.timeouts = 0
        self.worker_crashes = 0
        self.retries = 0
        self.load_shed = 0
        self.prepass_admissions = 0
        self.lints_served = 0

        self._servers: list = []
        self._shutdown = asyncio.Event()
        self._started = 0.0
        self.batches_served = 0
        self.requests_served = 0

    # -- worker lifecycle --------------------------------------------------

    def _worker_init(self) -> Dict[str, Any]:
        """The spawn payload: warm-start cache snapshot + pool bounds.
        Built fresh per spawn, so a respawned worker starts with every
        delta its predecessors (on any slot) merged back."""
        return {
            "cache_entries": self.cache.snapshot_persistent(),
            "cache_active": True,
            "cache_path": str(self._cache_path) if self._cache_path else None,
            "max_sessions": self.max_sessions,
            "max_live_clauses": self.max_live_clauses,
            "fault_injection": self.fault_injection,
        }

    def _spawn_worker(self, handle: _WorkerHandle) -> None:
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, self._worker_init()),
            name=f"repro-worker-{handle.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.spawns += 1
        handle.last_stats = {}

    def _reap_worker(self, handle: _WorkerHandle, kill: bool = True) -> None:
        """Take a worker down (SIGKILL unless already dead), reap the
        process so the PID disappears, fold its last stats snapshot into
        the dead-worker accumulators, and close the pipe."""
        proc = handle.proc
        if proc is not None:
            try:
                if kill and proc.is_alive():
                    proc.kill()
                proc.join(5)
            except (OSError, ValueError):
                pass
        self._accumulate_dead_stats(handle)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        handle.proc = None
        handle.conn = None

    def _respawn_worker(self, handle: _WorkerHandle) -> None:
        self._reap_worker(handle)
        self._spawn_worker(handle)

    def _accumulate_dead_stats(self, handle: _WorkerHandle) -> None:
        snapshot = handle.last_stats
        for key, value in (snapshot.get("pool") or {}).items():
            if isinstance(value, int):
                self._dead_pool[key] = self._dead_pool.get(key, 0) + value
        for key in ("hits", "misses", "persistent_hits"):
            value = (snapshot.get("cache") or {}).get(key, 0)
            self._dead_cache[key] = self._dead_cache.get(key, 0) + value
        handle.last_stats = {}

    def _affine_worker(self, tenant: str) -> _WorkerHandle:
        """The tenant's sticky worker slot: first touch picks the slot
        with the fewest assigned tenants (ties → lowest index), so with
        tenants ≤ workers each tenant gets a slot of its own and a kill
        costs exactly one tenant its warm state."""
        index = self._affinity.get(tenant)
        if index is None:
            loads = [0] * len(self._workers)
            for assigned in self._affinity.values():
                loads[assigned] += 1
            index = min(range(len(self._workers)), key=lambda i: (loads[i], i))
            self._affinity[tenant] = index
        return self._workers[index]

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._started = time.monotonic()
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._cache_path = self.cache_dir / api.CACHE_FILENAME
            self.cache.load(self._cache_path)
        else:
            # Still fingerprint decisive results: served stats expose
            # persistent_size/persistent_hits even without a disk store,
            # and worker deltas need fingerprint keys to merge at all.
            self.cache.enable_persistence()
        for handle in self._workers:
            self._spawn_worker(handle)
        if self.socket_path is not None:
            if self.socket_path.exists():
                self.socket_path.unlink()
            server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path)
            )
            self._servers.append(server)
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port or 0
            )
            self._servers.append(server)

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for handle in self._workers:
            if handle.conn is not None:
                try:
                    handle.conn.send({"op": "exit"})
                except (BrokenPipeError, OSError, ValueError):
                    pass
            self._reap_worker(handle, kill=True)
        if self._cache_path is not None:
            self.cache.save(self._cache_path)
        if self.socket_path is not None and self.socket_path.exists():
            self.socket_path.unlink()

    async def serve_forever(self) -> None:
        """Wait (inside a running loop, after :meth:`start`) until a
        ``shutdown`` op arrives."""
        await self._shutdown.wait()

    def run(self, announce: bool = False) -> None:
        """Blocking entry point: serve until a ``shutdown`` op (or
        KeyboardInterrupt), then flush the cache and clean up.
        ``announce`` prints the bound endpoints once listening."""

        async def _main() -> None:
            await self.start()
            if announce:
                print(
                    f"repro daemon listening on {', '.join(self.endpoints)} "
                    f"({len(self._workers)} workers)",
                    flush=True,
                )
            try:
                await self.serve_forever()
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    @property
    def endpoints(self) -> Tuple[str, ...]:
        names = []
        if self.socket_path is not None:
            names.append(f"unix:{self.socket_path}")
        for server in self._servers:
            for sock in server.sockets or ():
                try:
                    addr = sock.getsockname()
                except OSError:
                    continue
                if isinstance(addr, tuple):
                    names.append(f"tcp:{addr[0]}:{addr[1]}")
        return tuple(names)

    # -- tenancy ----------------------------------------------------------

    def tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(config=TenantConfig(name=name))
            self._tenants[name] = state
        return state

    def configure_tenant(
        self,
        name: str,
        namespace: Optional[str] = None,
        vc_budget: Optional[int] = None,
        max_models: Optional[int] = None,
        sorts: Optional[Mapping[str, str]] = None,
    ) -> TenantConfig:
        """Install per-tenant policy (also reachable over the wire via
        the ``tenant`` op).  Reconfiguring retires the tenant's session
        on its affine worker so new policy (e.g. ``max_models``) takes
        effect immediately."""
        state = self.tenant(name)
        config = state.config
        if namespace is not None:
            config.namespace = namespace
        if vc_budget is not None:
            config.vc_budget = vc_budget
        if max_models is not None:
            config.max_models = max_models
        if sorts is not None:
            for sort_name in sorts.values():
                api.sort_from_wire(sort_name)  # validate eagerly
            config.sorts = {str(var): str(sort_name) for var, sort_name in sorts.items()}
        # Pin the tenant's worker slot now (instead of lazily on its
        # first batch) so explicit configuration yields deterministic
        # routing — what the affinity regression tests rely on.
        self._affine_worker(name)
        self._retire_tenant_session(name)
        return config

    def _retire_tenant_session(self, tenant: str) -> None:
        """Ask the tenant's affine worker to drop its pooled session
        (fire-and-forget; the worker processes it after any in-flight
        request)."""
        index = self._affinity.get(tenant)
        if index is None:
            return
        handle = self._workers[index]
        if handle.conn is None:
            return
        try:
            handle.conn.send({"op": "retire", "tenant": tenant})
        except (BrokenPipeError, OSError, ValueError):
            pass

    # -- stats ------------------------------------------------------------

    def _aggregate_pool_stats(self) -> Dict[str, Any]:
        snapshots = [
            handle.last_stats["pool"]
            for handle in self._workers
            if handle.last_stats.get("pool")
        ]
        merged = merge_pool_stats(snapshots, baseline=self._dead_pool)
        merged["max_sessions"] = self.max_sessions
        return merged

    def _aggregate_cache_stats(self) -> Dict[str, int]:
        stats = self.cache.stats()
        for key in ("hits", "misses", "persistent_hits"):
            total = self._dead_cache.get(key, 0)
            for handle in self._workers:
                total += (handle.last_stats.get("cache") or {}).get(key, 0)
            stats[key] += total
        return stats

    def stats(self) -> Dict[str, Any]:
        return {
            "uptime": time.monotonic() - self._started,
            "batches": self.batches_served,
            "requests": self.requests_served,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "retries": self.retries,
            "load_shed": self.load_shed,
            "prepass_admissions": self.prepass_admissions,
            "lints": self.lints_served,
            "queue_deadline": self.queue_deadline,
            "pool": self._aggregate_pool_stats(),
            "cache": self._aggregate_cache_stats(),
            "workers": [
                {
                    "index": handle.index,
                    "pid": handle.pid,
                    "alive": handle.alive,
                    "busy": handle.lock.locked(),
                    "spawns": handle.spawns,
                    "tenants": sorted(
                        tenant
                        for tenant, index in self._affinity.items()
                        if index == handle.index
                    ),
                }
                for handle in self._workers
            ],
            "tenants": {
                name: {
                    "batches": state.batches,
                    "requests": state.requests,
                    "rejected": state.rejected,
                    "timeouts": state.timeouts,
                    "worker_crashes": state.worker_crashes,
                    "retries": state.retries,
                    "load_shed": state.load_shed,
                    "namespace": state.config.namespace,
                }
                for name, state in self._tenants.items()
            },
        }

    # -- protocol ---------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except json.JSONDecodeError as error:
                    await self._emit(writer, {"event": "error", "reason": f"bad JSON: {error}"})
                    continue
                if not isinstance(message, dict):
                    await self._emit(
                        writer, {"event": "error", "reason": "message must be a JSON object"}
                    )
                    continue
                stop = await self._dispatch(message, writer)
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown (shutdown op) cancels handlers still blocked
            # in readline; ending cleanly instead of cancelled keeps the
            # stream protocol's done-callback from logging a traceback.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _emit(self, writer: asyncio.StreamWriter, obj: Dict[str, Any]) -> None:
        writer.write(json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, message: dict, writer: asyncio.StreamWriter) -> bool:
        """Handle one op; returns True when the connection should close."""
        op = message.get("op")
        ident = message.get("id")

        def tag(obj: Dict[str, Any]) -> Dict[str, Any]:
            if ident is not None:
                obj["id"] = ident
            return obj

        if op == "ping":
            await self._emit(writer, tag({"event": "pong"}))
            return False
        if op == "stats":
            await self._emit(writer, tag({"event": "stats", "stats": self.stats()}))
            return False
        if op == "shutdown":
            await self._emit(writer, tag({"event": "bye"}))
            self._shutdown.set()
            return True
        if op == "tenant":
            name = message.get("tenant")
            if not isinstance(name, str) or not name:
                await self._emit(
                    writer, tag({"event": "error", "reason": "tenant op needs a tenant name"})
                )
                return False
            try:
                config = self.configure_tenant(
                    name,
                    namespace=message.get("namespace"),
                    vc_budget=message.get("vc_budget"),
                    max_models=message.get("max_models"),
                    sorts=message.get("sorts"),
                )
            except api.RequestError as error:
                await self._emit(writer, tag({"event": "error", "reason": str(error)}))
                return False
            await self._emit(
                writer,
                tag(
                    {
                        "event": "tenant",
                        "tenant": name,
                        "namespace": config.namespace,
                        "vc_budget": config.vc_budget,
                        "max_models": config.max_models,
                    }
                ),
            )
            return False
        if op == "batch":
            await self._handle_batch(message, writer, tag)
            return False
        if op == "lint":
            await self._handle_lint(message, writer, tag)
            return False
        await self._emit(writer, tag({"event": "error", "reason": f"unknown op {op!r}"}))
        return False

    async def _handle_lint(self, message: dict, writer, tag) -> None:
        """Static analysis only — answered supervisor-side without a
        worker round-trip (no solving is involved, so there is nothing
        to keep warm or to supervise)."""
        sources = message.get("sources") or []
        cases = message.get("cases") or []
        if not isinstance(sources, list) or not isinstance(cases, list):
            await self._emit(
                writer,
                tag({"event": "error", "reason": "lint needs sources/cases lists"}),
            )
            return
        low = [str(name) for name in message.get("low") or []]
        high = [str(name) for name in message.get("high") or []]
        diagnostics = []
        try:
            for entry in sources:
                if not isinstance(entry, dict) or "text" not in entry:
                    raise api.RequestError(
                        f"lint source must be an object with a 'text' field, got {entry!r}"
                    )
                target = target_from_source(
                    str(entry["text"]),
                    source=str(entry.get("name", "<wire>")),
                    low_inputs=low,
                    high_inputs=high,
                )
                diagnostics.extend(run_lint(target))
            if cases:
                from .casestudies import case_by_name

                for name in cases:
                    try:
                        diagnostics.extend(lint_case(case_by_name(str(name))))
                    except KeyError as error:
                        raise api.RequestError(str(error))
        except api.RequestError as error:
            await self._emit(writer, tag({"event": "error", "reason": str(error)}))
            return
        diagnostics = sort_diagnostics(diagnostics)
        self.lints_served += 1
        await self._emit(
            writer,
            tag(
                {
                    "event": api.EVENT_LINT,
                    "count": len(diagnostics),
                    "errors": sum(1 for d in diagnostics if d.severity == "error"),
                    "diagnostics": [d.to_wire() for d in diagnostics],
                }
            ),
        )

    async def _handle_batch(self, message: dict, writer, tag) -> None:
        tenant_name = message.get("tenant") or "default"
        state = self.tenant(tenant_name)
        raw_requests = message.get("requests")
        if not isinstance(raw_requests, list):
            await self._emit(
                writer, tag({"event": "error", "reason": "batch needs a requests list"})
            )
            return
        if len(raw_requests) > self.batch_limit:
            state.rejected += len(raw_requests)
            await self._emit(
                writer,
                tag(
                    {
                        "event": "rejected",
                        "reason": f"batch of {len(raw_requests)} exceeds the "
                        f"limit of {self.batch_limit}",
                    }
                ),
            )
            return

        start = time.perf_counter()
        state.batches += 1
        self.batches_served += 1
        await self._emit(writer, tag({"event": "accepted", "count": len(raw_requests)}))

        budget = (
            state.config.vc_budget
            if state.config.vc_budget is not None
            else self.vc_budget
        )
        for index, raw in enumerate(raw_requests):
            # The fault-injection hook rides next to the request payload
            # and never reaches the request parser; it is honoured only
            # when the daemon opted in at construction time.
            fault = None
            if isinstance(raw, dict) and "_fault" in raw:
                raw = dict(raw)
                popped = raw.pop("_fault")
                if self.fault_injection and isinstance(popped, dict):
                    fault = popped
            # Parse + admission control, both cheap and purely syntactic.
            try:
                request = api.VerificationRequest.from_wire(raw)
                estimate = self._admit(request, budget)
            except api.RequestError as error:
                await self._emit(
                    writer, tag({"event": "error", "index": index, "reason": str(error)})
                )
                continue
            if estimate is not None:
                state.rejected += 1
                await self._emit(
                    writer,
                    tag({"event": "rejected", "index": index, "reason": estimate}),
                )
                continue

            worker = self._affine_worker(tenant_name)
            try:
                await asyncio.wait_for(
                    worker.lock.acquire(), timeout=self.queue_deadline
                )
            except asyncio.TimeoutError:
                # Admission deadline blown: shed load instead of queueing
                # unboundedly.  Batch requests are idempotent, so the
                # client can safely retry after the hinted delay.
                state.load_shed += 1
                self.load_shed += 1
                await self._emit(
                    writer,
                    tag(
                        {
                            "event": "retry_after",
                            "index": index,
                            "retry_after": round(self.queue_deadline, 3),
                            "reason": (
                                f"worker {worker.index} busy past the "
                                f"{self.queue_deadline:.1f}s admission deadline"
                            ),
                        }
                    ),
                )
                continue
            try:
                event = await self._execute_supervised(
                    state, worker, raw, fault, index
                )
            finally:
                worker.lock.release()
            await self._emit(writer, tag(event))

        # elapsed measures request processing; the cache flush that
        # follows is bookkeeping whose cost grows with the whole store.
        elapsed = time.perf_counter() - start
        if self._cache_path is not None:
            self.cache.save(self._cache_path)
        await self._emit(
            writer,
            tag({"event": "done", "elapsed": elapsed, "stats": self.stats()}),
        )

    # -- execution --------------------------------------------------------

    def _admit(self, request: api.VerificationRequest, budget: int) -> Optional[str]:
        """None when admitted, else the human-readable rejection reason.

        Admission composes the syntactic VC estimate with the static
        prepass: an over-budget request that the prepass proves secure
        is admitted anyway — the worker's fast path will discharge it
        without a single solver call, so the VC count never material-
        izes.  The prepass only runs for over-budget requests (the
        common case stays a pure arithmetic check) and never causes a
        rejection of its own.
        """
        estimate = api.estimate_vc_count(request)
        if estimate <= budget:
            return None
        if request.static_prepass:
            try:
                if api.static_verdict(request).secure:
                    self.prepass_admissions += 1
                    return None
            except api.RequestError:
                pass
        return (
            f"request {request.label()!r} estimates {estimate} VCs, "
            f"over the admission budget of {budget}"
        )

    async def _call_worker(self, handle: _WorkerHandle, payload: Dict[str, Any]):
        """One request → one reply on ``handle``'s worker, supervised.

        Returns the reply dict, ``_TIMED_OUT`` (the worker was SIGKILLed
        and the slot respawned) or ``_CRASHED`` (the worker died on its
        own; the slot is respawned by the caller's retry policy)."""
        if handle.conn is None or not handle.alive:
            return _CRASHED
        handle.seq += 1
        payload["seq"] = handle.seq
        try:
            handle.conn.send(payload)
        except (BrokenPipeError, OSError, ValueError):
            return _CRASHED
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(None, _recv_blocking, handle.conn)
        # asyncio.wait (not wait_for): wait_for would cancel-and-await the
        # executor future, which cannot be interrupted while the thread
        # is blocked in recv — the kill below is what unblocks it.
        done, pending = await asyncio.wait({task}, timeout=self.timeout)
        if pending:
            self._respawn_worker(handle)  # SIGKILL; recv sees EOF and returns
            try:
                await asyncio.wait_for(task, timeout=5.0)
            except (asyncio.TimeoutError, Exception):  # noqa: BLE001
                pass
            return _TIMED_OUT
        reply = task.result()
        if reply is _CRASHED or not isinstance(reply, dict):
            return _CRASHED
        delta = reply.get("cache_delta")
        if delta:
            self.cache.merge(delta)
        stats = reply.get("stats")
        if isinstance(stats, dict):
            handle.last_stats = stats
        return reply

    async def _execute_supervised(
        self,
        state: _TenantState,
        worker: _WorkerHandle,
        raw_request: dict,
        fault: Optional[dict],
        index: int,
    ) -> Dict[str, Any]:
        """Run one admitted request on the tenant's affine worker with
        the full degradation ladder: timeout → kill + respawn; crash →
        respawn + one transparent retry → structured ``worker_crash``."""
        config = state.config
        payload = {
            "op": "run",
            "tenant": config.name,
            "namespace": config.namespace,
            "request": raw_request,
            "sorts": dict(config.sorts) if config.sorts else None,
            "max_models": config.max_models,
            "fault": fault,
        }
        attempts = 0
        while True:
            attempts += 1
            outcome = await self._call_worker(worker, dict(payload))
            if outcome is _TIMED_OUT:
                state.timeouts += 1
                self.timeouts += 1
                return {
                    "event": "timeout",
                    "index": index,
                    "reason": (
                        f"request exceeded the {self.timeout:.0f}s wall-clock "
                        f"budget; worker {worker.index} killed and respawned, "
                        f"tenant session state reset"
                    ),
                }
            if outcome is _CRASHED:
                state.worker_crashes += 1
                self.worker_crashes += 1
                self._respawn_worker(worker)
                if attempts == 1:
                    # Verdicts are deterministic and cache-keyed, so one
                    # transparent replay on the fresh worker is safe; the
                    # fault hook is dropped so an injected crash cannot
                    # loop — unless the test marked it sticky, which is
                    # how the give-up path below gets exercised.
                    state.retries += 1
                    self.retries += 1
                    if not (fault and fault.get("sticky")):
                        payload["fault"] = None
                    continue
                return {
                    "event": "worker_crash",
                    "index": index,
                    "attempts": attempts,
                    "reason": (
                        f"worker {worker.index} died twice running this "
                        f"request; giving up after one retry"
                    ),
                }
            state.requests += 1
            self.requests_served += 1
            if outcome.get("kind") == "verdict":
                return {
                    "event": "verdict",
                    "index": index,
                    "attempts": attempts,
                    "verdict": outcome.get("verdict"),
                }
            return {
                "event": "error",
                "index": index,
                "reason": str(outcome.get("reason", "unspecified worker error")),
            }


__all__ = [
    "DEFAULT_BATCH_LIMIT",
    "DEFAULT_QUEUE_DEADLINE",
    "DEFAULT_TIMEOUT",
    "DEFAULT_VC_BUDGET",
    "DEFAULT_WORKERS",
    "TenantConfig",
    "VerificationServer",
]
