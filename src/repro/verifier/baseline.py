"""The timing-sensitive baseline: what existing techniques accept.

The paper positions CommCSL against verification techniques that prevent
internal timing channels by *forbidding secret-dependent timing*
altogether — no branching or looping on high data (Smith 2007, Sabelfeld
& Sands 2000, SecCSL [Ernst & Murray 2019], COVERN [Murray et al. 2018];
see Sec. 1 and Sec. 6).  Under their discipline two executions with equal
low inputs take the *same control path*, so the scheduler behaves
identically and no internal timing channel exists — but any program whose
timing depends on a secret is rejected, sound hardware model or not.

This module implements that baseline as a checker over our language:

* standard flow-sensitive taint tracking of explicit flows (like the main
  pipeline), and
* **rejection of every ``if``/``while`` whose condition is high** and of
  every ``atomic ... when`` guard that reads shared state (its
  enabledness is schedule-dependent),

with *no* commutativity reasoning: shared cells hold low data only if
every write into them is low-in-low-context.

Its purpose is the evaluation claim of Sec. 5: "Ca. half of our examples
have secret-dependent timing due to branches on high data, and would thus
be rejected by existing techniques, even if the attacker cannot observe
timing."  ``benchmarks/bench_baseline.py`` runs this checker on all 18
Table-1 case studies and reports which survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    Command,
    Fork,
    If,
    Join,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    Unshare,
    Var,
    While,
)
from .declarations import ProgramSpec
from .taint import HIGH, LOW, Taint, join


@dataclass
class BaselineReport:
    """Verdict of the timing-sensitive baseline."""

    name: str
    accepted: bool
    rejections: tuple[str, ...]

    def summary(self) -> str:
        verdict = "ACCEPTED" if self.accepted else "REJECTED"
        lines = [f"{self.name}: {verdict} (timing-sensitive baseline)"]
        for reason in self.rejections:
            lines.append(f"  reject: {reason}")
        return "\n".join(lines)


@dataclass
class _State:
    env: dict = field(default_factory=dict)
    heap: dict = field(default_factory=dict)  # location var -> taint

    def copy(self) -> "_State":
        return _State(dict(self.env), dict(self.heap))

    def var(self, name: str) -> Taint:
        return self.env.get(name, LOW)

    def join_with(self, other: "_State") -> None:
        for name in set(self.env) | set(other.env):
            self.env[name] = join(self.var(name), other.var(name))
        for name in set(self.heap) | set(other.heap):
            self.heap[name] = join(self.heap.get(name, LOW), other.heap.get(name, LOW))


class BaselineChecker:
    """Flow-sensitive taint + no-high-control-flow discipline."""

    def __init__(self, program_spec: ProgramSpec) -> None:
        self._spec = program_spec
        self._rejections: list[str] = []

    def check(self) -> BaselineReport:
        state = _State()
        for name in self._spec.low_inputs:
            state.env[name] = LOW
        for name in self._spec.high_inputs:
            state.env[name] = HIGH
        self._walk(self._spec.program, state)
        return BaselineReport(
            self._spec.name, not self._rejections, tuple(self._rejections)
        )

    # -- expressions -----------------------------------------------------

    def _expr_taint(self, expr, state: _State) -> Taint:
        from ..lang.ast import BinOp, Call, Lit, UnOp

        if isinstance(expr, Lit):
            return LOW
        if isinstance(expr, Var):
            return state.var(expr.name)
        if isinstance(expr, UnOp):
            return self._expr_taint(expr.operand, state)
        if isinstance(expr, BinOp):
            return join(
                self._expr_taint(expr.left, state), self._expr_taint(expr.right, state)
            )
        if isinstance(expr, Call):
            taint = LOW
            for arg in expr.args:
                taint = join(taint, self._expr_taint(arg, state))
            return taint
        raise TypeError(f"not an expression: {expr!r}")

    # -- commands ---------------------------------------------------------

    def _walk(self, cmd: Command, state: _State) -> None:
        if isinstance(cmd, (Skip, Share, Unshare)):
            return
        if isinstance(cmd, Assign):
            state.env[cmd.target] = self._expr_taint(cmd.expr, state)
            return
        if isinstance(cmd, Alloc):
            state.env[cmd.target] = LOW
            state.heap[cmd.target] = self._expr_taint(cmd.expr, state)
            return
        if isinstance(cmd, Load):
            if isinstance(cmd.address, Var):
                state.env[cmd.target] = state.heap.get(cmd.address.name, HIGH)
            else:
                state.env[cmd.target] = HIGH
            return
        if isinstance(cmd, Store):
            taint = self._expr_taint(cmd.expr, state)
            if isinstance(cmd.address, Var):
                # A single high write taints the cell for the whole run —
                # no commutativity argument can later reclaim it.
                key = cmd.address.name
                state.heap[key] = join(state.heap.get(key, LOW), taint)
            return
        if isinstance(cmd, Seq):
            self._walk(cmd.first, state)
            self._walk(cmd.second, state)
            return
        if isinstance(cmd, If):
            condition = self._expr_taint(cmd.condition, state)
            if condition.is_high():
                self._rejections.append(
                    f"if ({cmd.condition}): branching on high data (secret-dependent "
                    f"timing; forbidden by the baseline discipline)"
                )
            then_state = state.copy()
            else_state = state.copy()
            self._walk(cmd.then_branch, then_state)
            self._walk(cmd.else_branch, else_state)
            then_state.join_with(else_state)
            state.env, state.heap = then_state.env, then_state.heap
            return
        if isinstance(cmd, While):
            for _ in range(64):
                condition = self._expr_taint(cmd.condition, state)
                if condition.is_high():
                    self._rejections.append(
                        f"while ({cmd.condition}): looping on high data "
                        f"(secret-dependent timing; forbidden by the baseline)"
                    )
                    return
                body_state = state.copy()
                self._walk(cmd.body, body_state)
                body_state.join_with(state)
                before = dict(state.env), dict(state.heap)
                state.env, state.heap = body_state.env, body_state.heap
                if before == (state.env, state.heap):
                    return
            return
        if isinstance(cmd, Par):
            left_state = state.copy()
            right_state = state.copy()
            self._walk(cmd.left, left_state)
            self._walk(cmd.right, right_state)
            left_state.join_with(right_state)
            state.env, state.heap = left_state.env, left_state.heap
            return
        if isinstance(cmd, Atomic):
            if cmd.when is not None:
                self._rejections.append(
                    f"atomic ... when ({cmd.when}): blocking on shared state makes "
                    f"progress schedule-dependent (rejected by the baseline)"
                )
            self._walk(cmd.body, state)
            return
        if isinstance(cmd, Print):
            taint = self._expr_taint(cmd.expr, state)
            if taint.is_high():
                self._rejections.append(
                    f"print({cmd.expr}): printed value is high (explicit flow)"
                )
            return
        if isinstance(cmd, (Fork, Join)):
            self._rejections.append(f"{cmd}: dynamic threads not supported by the baseline")
            return
        raise TypeError(f"not a command: {cmd!r}")


def baseline_check(program_spec: ProgramSpec) -> BaselineReport:
    """Run the timing-sensitive baseline on a verification problem."""
    return BaselineChecker(program_spec).check()
