"""Modular product program construction (Eilers et al. 2018).

HyperViper discharges relational proof obligations by translating the
program into a *modular product program*: a single (unary) program that
simulates two executions at once, with one renamed copy of the store per
execution and boolean *activation variables* tracking which executions
are live on each control path.  Relational assertions like ``Low(e)``
become ordinary boolean conditions ``e⟨1⟩ == e⟨2⟩`` of the product.

This module implements the construction for the **sequential, determinate
fragment** of the object language (no ``||``, no ``fork``; ``atomic c`` is
equivalent to ``c`` without concurrency).  That fragment is exactly where
HyperViper's product encoding operates — concurrency is handled by the
logic's modularity (the Share/Atomic rules), never by producting
schedules, which is the whole point of the paper.

Construction (activation variables ``p1``, ``p2``):

====================  =====================================================
source                product
====================  =====================================================
``x := e``            ``if (p1) { x⟨1⟩ := e⟨1⟩ }; if (p2) { x⟨2⟩ := e⟨2⟩ }``
``if (b) c1 else c2`` fresh ``q_i := p_i && b⟨i⟩``, ``r_i := p_i && !b⟨i⟩``;
                      ``⟦c1⟧(q1, q2); ⟦c2⟧(r1, r2)``
``while (b) c``       fresh ``q_i := p_i && b⟨i⟩``;
                      ``while (q1 || q2) { ⟦c⟧(q1, q2); q_i := q_i && b⟨i⟩ }``
``print(e)``          each live copy appends ``e⟨i⟩`` to its own output
                      sequence variable
====================  =====================================================

Heap cells are duplicated by letting each copy perform its own ``alloc``;
copy-``i``'s pointers live in copy-``i``'s variables, so loads and stores
through variables hit the right cells.  Pointer *arithmetic* in address
positions would break this separation and is rejected.

:func:`product_noninterference` packages the construction as a relational
checker with the same interface as the empirical one in
:mod:`repro.security.noninterference`; the two are cross-validated in
``tests/unit/test_product.py`` and ``tests/property/test_product_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
    command_fv,
    expr_fv,
    seq_all,
)
from ..lang.interpreter import AbortError, run

#: Variable holding copy-``i``'s output trace in the product.
OUT1 = "__out1"
OUT2 = "__out2"


class ProductError(Exception):
    """The command is outside the productable fragment."""


def _copy_name(name: str, copy: int) -> str:
    return f"{name}__c{copy}"


def _rename_copy(expr: Expr, copy: int) -> Expr:
    """Rename every variable of ``expr`` to its copy-``copy`` version."""
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Var):
        return Var(_copy_name(expr.name, copy))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rename_copy(expr.left, copy), _rename_copy(expr.right, copy))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rename_copy(expr.operand, copy))
    if isinstance(expr, Call):
        return Call(expr.function, tuple(_rename_copy(arg, copy) for arg in expr.args))
    raise TypeError(f"not an expression: {expr!r}")


@dataclass
class _Builder:
    """Fresh-name supply for activation variables."""

    counter: int = 0

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"__{base}{self.counter}"


def build_product(program: Command) -> Command:
    """The modular 2-product of a sequential command.

    The returned command operates on copy-renamed variables
    (``x__c1``/``x__c2``), starts under activation ``true``/``true``, and
    accumulates each copy's public output in ``__out1``/``__out2``.
    Raises :class:`ProductError` on commands outside the fragment
    (parallelism, fork/join, pointer arithmetic in address position).
    """
    builder = _Builder()
    p1 = builder.fresh("p")
    p2 = builder.fresh("p")
    prelude = seq_all(
        Assign(p1, Lit(True)),
        Assign(p2, Lit(True)),
        Assign(OUT1, Call("seq", ())),
        Assign(OUT2, Call("seq", ())),
    )
    return Seq(prelude, _product(program, p1, p2, builder))


def _guarded(activation: str, command: Command) -> Command:
    return If(Var(activation), command, Skip())


def _check_address(expr: Expr) -> None:
    if not isinstance(expr, (Var, Lit)):
        raise ProductError(
            f"address expression {expr} uses pointer arithmetic; the product "
            f"construction requires addresses to be stored pointers"
        )


def _product(cmd: Command, p1: str, p2: str, builder: _Builder) -> Command:
    if isinstance(cmd, Skip):
        return Skip()
    if isinstance(cmd, Assign):
        return seq_all(
            _guarded(p1, Assign(_copy_name(cmd.target, 1), _rename_copy(cmd.expr, 1))),
            _guarded(p2, Assign(_copy_name(cmd.target, 2), _rename_copy(cmd.expr, 2))),
        )
    if isinstance(cmd, Load):
        _check_address(cmd.address)
        return seq_all(
            _guarded(p1, Load(_copy_name(cmd.target, 1), _rename_copy(cmd.address, 1))),
            _guarded(p2, Load(_copy_name(cmd.target, 2), _rename_copy(cmd.address, 2))),
        )
    if isinstance(cmd, Store):
        _check_address(cmd.address)
        return seq_all(
            _guarded(p1, Store(_rename_copy(cmd.address, 1), _rename_copy(cmd.expr, 1))),
            _guarded(p2, Store(_rename_copy(cmd.address, 2), _rename_copy(cmd.expr, 2))),
        )
    if isinstance(cmd, Alloc):
        return seq_all(
            _guarded(p1, Alloc(_copy_name(cmd.target, 1), _rename_copy(cmd.expr, 1))),
            _guarded(p2, Alloc(_copy_name(cmd.target, 2), _rename_copy(cmd.expr, 2))),
        )
    if isinstance(cmd, Seq):
        return Seq(_product(cmd.first, p1, p2, builder), _product(cmd.second, p1, p2, builder))
    if isinstance(cmd, If):
        q1, q2 = builder.fresh("p"), builder.fresh("p")
        r1, r2 = builder.fresh("p"), builder.fresh("p")
        split = seq_all(
            Assign(q1, BinOp("&&", Var(p1), _rename_copy(cmd.condition, 1))),
            Assign(q2, BinOp("&&", Var(p2), _rename_copy(cmd.condition, 2))),
            Assign(r1, BinOp("&&", Var(p1), UnOp("!", _rename_copy(cmd.condition, 1)))),
            Assign(r2, BinOp("&&", Var(p2), UnOp("!", _rename_copy(cmd.condition, 2)))),
        )
        return seq_all(
            split,
            _product(cmd.then_branch, q1, q2, builder),
            _product(cmd.else_branch, r1, r2, builder),
        )
    if isinstance(cmd, While):
        q1, q2 = builder.fresh("p"), builder.fresh("p")
        enter = seq_all(
            Assign(q1, BinOp("&&", Var(p1), _rename_copy(cmd.condition, 1))),
            Assign(q2, BinOp("&&", Var(p2), _rename_copy(cmd.condition, 2))),
        )
        body = seq_all(
            _product(cmd.body, q1, q2, builder),
            Assign(q1, BinOp("&&", Var(q1), _rename_copy(cmd.condition, 1))),
            Assign(q2, BinOp("&&", Var(q2), _rename_copy(cmd.condition, 2))),
        )
        return Seq(enter, While(BinOp("||", Var(q1), Var(q2)), body))
    if isinstance(cmd, Atomic):
        # Without concurrency, atomic c has exactly the behaviour of c.
        return _product(cmd.body, p1, p2, builder)
    if isinstance(cmd, (Share, Unshare)):
        return Skip()
    if isinstance(cmd, Print):
        def entry(copy: int) -> Expr:
            value = _rename_copy(cmd.expr, copy)
            from ..lang.ast import DEFAULT_CHANNEL

            if cmd.channel == DEFAULT_CHANNEL:
                return value
            return Call("pair", (Lit(cmd.channel), value))

        return seq_all(
            _guarded(p1, Assign(OUT1, Call("append", (Var(OUT1), entry(1))))),
            _guarded(p2, Assign(OUT2, Call("append", (Var(OUT2), entry(2))))),
        )
    if isinstance(cmd, (Par, Fork, Join)):
        raise ProductError(
            f"{type(cmd).__name__} is outside the product fragment: the product "
            f"construction is for the sequential code the logic's modular rules "
            f"hand it (thread bodies, atomic blocks); concurrency is handled by "
            f"the logic, not by producting schedules"
        )
    raise TypeError(f"not a command: {cmd!r}")


def product_inputs(inputs1: Mapping[str, Any], inputs2: Mapping[str, Any]) -> dict:
    """Initial store of the product for the two executions' inputs."""
    store: dict[str, Any] = {}
    for name, value in inputs1.items():
        store[_copy_name(name, 1)] = value
    for name, value in inputs2.items():
        store[_copy_name(name, 2)] = value
    return store


@dataclass(frozen=True)
class ProductRun:
    """Result of one product execution: the two copies' output traces."""

    output1: tuple
    output2: tuple

    @property
    def outputs_agree(self) -> bool:
        return self.output1 == self.output2


def run_product(
    product: Command,
    inputs1: Mapping[str, Any],
    inputs2: Mapping[str, Any],
    max_steps: int = 1_000_000,
) -> ProductRun:
    """Execute a built product on a pair of input stores."""
    result = run(product, inputs=product_inputs(inputs1, inputs2), max_steps=max_steps)
    return ProductRun(tuple(result.store[OUT1]), tuple(result.store[OUT2]))


@dataclass(frozen=True)
class ProductNIReport:
    """Outcome of product-based non-interference checking."""

    secure: bool
    witness: Optional[tuple] = None  # (inputs1, inputs2, output1, output2)
    pairs_checked: int = 0

    def __bool__(self) -> bool:
        return self.secure


def product_noninterference(
    program: Command,
    instance_groups: Iterable[Sequence[Mapping[str, Any]]],
    max_steps: int = 1_000_000,
) -> ProductNIReport:
    """Check Def. 2.1 on a sequential program via the product construction.

    ``instance_groups`` has the same shape as for the empirical checker:
    each group is a list of input stores agreeing on low inputs and
    differing in high inputs; all pairs within a group are producted and
    their output traces compared.
    """
    product = build_product(program)
    checked = 0
    for group in instance_groups:
        group = list(group)
        for i, inputs1 in enumerate(group):
            for inputs2 in group[i + 1 :]:
                outcome = run_product(product, inputs1, inputs2, max_steps=max_steps)
                checked += 1
                if not outcome.outputs_agree:
                    return ProductNIReport(
                        False,
                        (dict(inputs1), dict(inputs2), outcome.output1, outcome.output2),
                        checked,
                    )
    return ProductNIReport(True, None, checked)


def is_productable(cmd: Command) -> bool:
    """True iff ``cmd`` is in the sequential fragment the product handles."""
    try:
        build_product(cmd)
    except ProductError:
        return False
    return True
