"""Automated relational verifier (the HyperViper analogue)."""

from .analysis import AnalysisError, AnalysisReport, Obligation, TaintAnalyzer
from .baseline import BaselineChecker, BaselineReport, baseline_check
from .conformance import ConformanceReport, check_conformance
from .declarations import ProgramSpec, ResourceDecl
from .frontend import VerificationResult, verify, verify_threaded
from .product import (
    ProductError,
    ProductNIReport,
    ProductRun,
    build_product,
    is_productable,
    product_noninterference,
    run_product,
)
from .taint import HIGH, LOW, Taint, abstract, join, join_all
from .vcgen import (
    ConformanceVC,
    VCError,
    conformance_vc,
    discharge_conformance,
    symbolic_conformance_ok,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BaselineChecker",
    "BaselineReport",
    "ConformanceReport",
    "ConformanceVC",
    "VCError",
    "HIGH",
    "LOW",
    "Obligation",
    "ProductError",
    "ProductNIReport",
    "ProductRun",
    "ProgramSpec",
    "ResourceDecl",
    "Taint",
    "TaintAnalyzer",
    "VerificationResult",
    "abstract",
    "baseline_check",
    "build_product",
    "check_conformance",
    "conformance_vc",
    "discharge_conformance",
    "is_productable",
    "join",
    "join_all",
    "product_noninterference",
    "run_product",
    "symbolic_conformance_ok",
    "verify",
    "verify_threaded",
]
