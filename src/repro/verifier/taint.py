"""Relational taint domain used by the automated verifier.

HyperViper encodes relational lowness into SMT via a modular product
construction (Eilers et al. 2018).  Our automated frontend tracks the same
information with an abstract domain over *pairs of executions with equal
low inputs*:

* ``LOW`` — the value is equal in both executions;
* ``HIGH`` — no relation is known (the value may differ);
* ``ABSTRACT(resource)`` — the value is a resource value ``v`` whose
  *abstraction* ``α(v)`` is equal in both executions (the guarantee the
  Share rule provides after unsharing); applying one of the resource's
  declared *low views* to it yields a LOW value.

The join is the obvious one; any arithmetic on an ABSTRACT value degrades
it to HIGH (only declared views preserve lowness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Taint:
    """An element of the taint lattice."""

    level: str  # 'low' | 'high' | 'abstract'
    resource: Optional[str] = None  # set when level == 'abstract'

    def is_low(self) -> bool:
        return self.level == "low"

    def is_high(self) -> bool:
        return self.level == "high"

    def is_abstract(self) -> bool:
        return self.level == "abstract"

    def __str__(self) -> str:
        if self.is_abstract():
            return f"abstract({self.resource})"
        return self.level


LOW = Taint("low")
HIGH = Taint("high")


def abstract(resource: str) -> Taint:
    return Taint("abstract", resource)


def join(first: Taint, second: Taint) -> Taint:
    """Least upper bound.  ABSTRACT values only stay meaningful alone:
    combining them with anything (even LOW) loses the view structure, so
    the join with anything other than an equal taint or LOW-identity is
    HIGH, except that LOW is the bottom element."""
    if first == second:
        return first
    if first.is_low():
        return second
    if second.is_low():
        return first
    return HIGH


def join_all(*taints: Taint) -> Taint:
    result = LOW
    for taint in taints:
        result = join(result, taint)
    return result
