"""The verification frontend (the HyperViper analogue's entry point).

``verify(program_spec, ...)`` runs the full pipeline:

1. **Specification validity** (Def. 3.1) for every declared resource —
   the abstract-commutativity core of the technique;
2. **Static analysis**: the relational taint walk plus the CSL/guard
   discipline checks of :mod:`repro.verifier.analysis`;
3. **Action conformance**: every annotated atomic block semantically
   implements its declared action (:mod:`repro.verifier.conformance`);
4. **Retroactive obligations**: obligations the static analysis deferred
   (high-context action counts, retroactive preconditions, unary argument
   constraints) are discharged with the bounded relational checker of
   :mod:`repro.security.noninterference` on caller-supplied instances —
   the executable counterpart of the paper's check-at-unshare mechanism.

The verdict is ``verified`` only when every stage passes; every failure
carries a human-readable reason, and counterexamples are concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # imported lazily at run time: repro.analysis imports us
    from ..analysis.prepass import PrepassReport

from ..security.noninterference import NIReport, check_noninterference
from ..smt.session import SolverSession
from ..spec.validity import ValidityReport, check_validity_batch
from .analysis import Obligation, TaintAnalyzer
from .conformance import ConformanceReport, check_conformance
from .declarations import ProgramSpec

InstanceGenerator = Callable[[], Sequence[Sequence[dict]]]

#: One shared solver session per *worker process* for parallel
#: conformance discharge: obligations shipped to the same worker reuse
#: each other's learned clauses and Tseitin definitions, and the worker's
#: validity-cache delta flows back to the parent via repro.parallel.
_WORKER_SESSION: Optional[SolverSession] = None


def _discharge_one(decl, atomic, session) -> tuple:
    """Discharge one conformance VC; VCErrors become data (they must
    survive a process-pool hop)."""
    from .vcgen import VCError, discharge_conformance

    try:
        return ("ok", discharge_conformance(decl, atomic, session=session))
    except VCError as error:
        return ("vcerror", str(error))


def _conformance_task(payload: tuple) -> tuple:
    """Pool task: discharge one (decl, atomic) pair on the worker's
    shared session."""
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = SolverSession()
    decl, atomic = payload
    return _discharge_one(decl, atomic, _WORKER_SESSION)


@dataclass
class VerificationResult:
    """The outcome of verifying one program."""

    name: str
    verified: bool
    errors: tuple[str, ...]
    obligations: tuple[Obligation, ...]
    validity_reports: dict[str, ValidityReport]
    conformance_reports: tuple[ConformanceReport, ...]
    ni_report: Optional[NIReport] = None
    #: (action, solver verdict string) per block discharged symbolically.
    symbolic_conformance: tuple = ()
    #: The static pre-verification report (None when the prepass is off).
    #: When ``prepass.secure``, stages 3 and 4 were skipped entirely.
    prepass: Optional[PrepassReport] = None

    def summary(self) -> str:
        lines = [f"{self.name}: {'VERIFIED' if self.verified else 'REJECTED'}"]
        for error in self.errors:
            lines.append(f"  error: {error}")
        for obligation in self.obligations:
            lines.append(f"  obligation: {obligation}")
        return "\n".join(lines)


def verify_threaded(
    name: str,
    threaded_program: "ThreadedProgram",
    resources: tuple,
    low_inputs: frozenset = frozenset(),
    high_inputs: frozenset = frozenset(),
    **verify_kwargs,
) -> VerificationResult:
    """Verify a fork/join program (HyperViper's richer language, Sec. 5).

    The program is first reduced to the paper's structured ``||`` calculus
    with :func:`repro.lang.desugar.threaded_equivalent`; the reduction is
    behaviour-preserving for the barrier-structured fragment (tokens in
    scalar variables, joins matching forks — checked, with a rejection
    otherwise), after which the standard pipeline applies unchanged.
    """
    from ..lang.desugar import DesugarError, threaded_equivalent

    try:
        structured = threaded_equivalent(threaded_program)
    except DesugarError as error:
        return VerificationResult(
            name=name,
            verified=False,
            errors=(f"fork/join reduction failed: {error}",),
            obligations=(),
            validity_reports={},
            conformance_reports=(),
        )
    program_spec = ProgramSpec(
        name=name,
        program=structured,
        resources=resources,
        low_inputs=low_inputs,
        high_inputs=high_inputs,
    )
    return verify(program_spec, **verify_kwargs)


def verify(
    program_spec: ProgramSpec,
    bounded_instances: Optional[InstanceGenerator] = None,
    exhaustive_discharge: bool = False,
    conformance_samples: int = 6,
    conformance_mode: str = "auto",
    jobs: int = 1,
    use_session: bool = True,
    session: Optional[SolverSession] = None,
    static_prepass: bool = True,
) -> VerificationResult:
    """Run the full verification pipeline on one program.

    ``conformance_mode`` selects how stage 3 (atomic bodies implement
    their actions) is discharged:

    * ``"auto"`` (default) — symbolic VC generation + the SMT solver
      (all paths covered by construction); blocks outside the symbolic
      fragment (loops in atomic bodies, blocking guards, foreign heap
      cells) fall back to semantic sampling;
    * ``"symbolic"`` — symbolic only; out-of-fragment blocks error;
    * ``"sampling"`` — semantic sampling only (the pre-VC behaviour).

    ``jobs > 1`` fans the independent obligations — per-resource Def. 3.1
    validity in stage 1, per-block conformance VCs in stage 3 — out over
    a process pool, merging each worker's validity-cache delta back into
    the parent store (sequential fallback when the spec's callables do
    not pickle; verdicts are identical either way).  ``use_session``
    (default) discharges the run's conformance VCs on one shared
    incremental :class:`~repro.smt.session.SolverSession` instead of a
    fresh solver per VC.  Passing ``session`` explicitly reuses a
    *caller-owned* warm session across verify() calls — how the
    verification daemon (:mod:`repro.server`) carries learned clauses
    and Tseitin definitions from one batch to the next; it implies
    ``use_session`` and suppresses the per-run session.

    ``static_prepass`` (default on) runs the sound static pre-verification
    of :mod:`repro.analysis` after stage 2: when the lockset race detector
    and the flow analysis jointly prove the program secure, stages 3 and 4
    are skipped — no VCs are generated and the SMT solver is never
    touched.  The prepass only ever *accepts*; any rejection still comes
    from the full pipeline, so disabling it (``static_prepass=False``)
    changes wall-clock time, never verdicts.
    """
    if conformance_mode not in ("auto", "symbolic", "sampling"):
        raise ValueError(f"unknown conformance_mode {conformance_mode!r}")
    errors: list[str] = []

    # Stage 1: specification validity (Def. 3.1) — one independent
    # obligation per resource, fanned out when jobs > 1.
    validity_reports: dict[str, ValidityReport] = {}
    reports = check_validity_batch(
        (decl.spec for decl in program_spec.resources), jobs=jobs
    )
    for decl, report in zip(program_spec.resources, reports):
        validity_reports[decl.name] = report
        if not report.valid:
            for counterexample in report.counterexamples:
                errors.append(f"resource {decl.name}: invalid specification — {counterexample}")

    # Stage 2: static analysis (taint + CSL discipline).
    analyzer = TaintAnalyzer(program_spec)
    analysis = analyzer.analyze()
    errors.extend(analysis.errors)

    # Static pre-verification fast path: when the race detector and the
    # flow analysis jointly prove the program secure (and stages 1–2 are
    # clean), the security property holds without the abstract-
    # commutativity argument — skip VC generation and SMT discharge.
    # Deferred taint obligations (e.g. a retroactive action count under
    # a high branch) encode abstraction observability the flow model
    # does not cover, so any obligation disables the fast path.
    prepass_report: Optional["PrepassReport"] = None
    if static_prepass and not errors and not analysis.obligations:
        from ..analysis.prepass import run_prepass

        prepass_report = run_prepass(program_spec)
        if prepass_report.secure:
            return VerificationResult(
                name=program_spec.name,
                verified=True,
                errors=(),
                obligations=(),
                validity_reports=validity_reports,
                conformance_reports=(),
                ni_report=None,
                symbolic_conformance=(),
                prepass=prepass_report,
            )

    # Stage 3: action conformance of every annotated atomic block —
    # symbolically where possible, by semantic sampling otherwise.  The
    # symbolic discharges are independent VCs: they run up front, either
    # over the process pool (jobs > 1) or on one shared solver session.
    from ..smt.solver import Verdict

    eligible = [
        atomic
        for atomic in analysis.atomic_blocks
        if conformance_mode in ("auto", "symbolic") and atomic.when is None
    ]
    symbolic_outcomes: dict[int, tuple] = {}
    if eligible:
        payloads = [
            (program_spec.resource_by_action(atomic.action), atomic)
            for atomic in eligible
        ]
        if session is not None:
            run_session = session
        else:
            run_session = SolverSession() if use_session else None

        def _discharge_in_process(payload):
            decl, atomic = payload
            return _discharge_one(decl, atomic, run_session)

        if jobs > 1 and len(payloads) > 1:
            from ..parallel import parallel_map

            # The pool task keeps one session per *worker process*; when
            # the pool cannot engage (unpicklable spec callables, broken
            # pool), the fallback stays on this run's own session so
            # nothing leaks across verify() calls and ``use_session``
            # keeps its meaning.
            outcomes = parallel_map(
                _conformance_task,
                payloads,
                jobs=jobs,
                fallback_fn=_discharge_in_process,
            )
        else:
            outcomes = [_discharge_in_process(payload) for payload in payloads]
        symbolic_outcomes = {
            id(atomic): outcome for atomic, outcome in zip(eligible, outcomes)
        }

    conformance_reports: list[ConformanceReport] = []
    symbolic_conformance: list[tuple[str, str]] = []
    for atomic in analysis.atomic_blocks:
        decl = program_spec.resource_by_action(atomic.action)
        symbolic_result = None
        outcome = symbolic_outcomes.get(id(atomic))
        if outcome is not None:
            kind, value = outcome
            if kind == "ok":
                symbolic_result = value
            else:  # the block is outside the symbolic fragment
                if conformance_mode == "symbolic":
                    errors.append(f"atomic [{atomic.action}]: symbolic conformance failed: {value}")
                    continue
                symbolic_result = None
        elif conformance_mode == "symbolic":
            errors.append(
                f"atomic [{atomic.action}]: blocking guards are outside the "
                f"symbolic conformance fragment"
            )
            continue
        if symbolic_result is not None and symbolic_result.verdict != Verdict.UNKNOWN:
            symbolic_conformance.append((atomic.action, symbolic_result.verdict.value))
            if symbolic_result.verdict == Verdict.REFUTED:
                errors.append(
                    f"atomic [{atomic.action}]: body does not implement the action — "
                    f"symbolic countermodel {dict(symbolic_result.model or {})}"
                )
            continue
        report = check_conformance(decl, atomic, samples_per_value=conformance_samples)
        conformance_reports.append(report)
        if not report.ok:
            errors.append(str(report))

    # Stage 4: retroactive obligations via bounded relational checking.
    ni_report: Optional[NIReport] = None
    obligations = list(analysis.obligations)
    if obligations and not errors:
        if bounded_instances is None:
            errors.append(
                f"{len(obligations)} retroactive obligation(s) and no bounded instances "
                f"supplied to discharge them"
            )
        else:
            from ..security.noninterference import channel_observer

            ni_report = check_noninterference(
                program_spec.program,
                bounded_instances(),
                exhaustive=exhaustive_discharge,
                observe=channel_observer(program_spec.low_channels),
            )
            if ni_report.secure:
                for obligation in obligations:
                    obligation.discharged = True
                    obligation.method = (
                        "exhaustive interleaving check" if exhaustive_discharge else "sampled schedules"
                    )
            else:
                errors.append(
                    f"retroactive obligations refuted by bounded checking: {ni_report.witness}"
                )

    verified = not errors
    return VerificationResult(
        name=program_spec.name,
        verified=verified,
        errors=tuple(errors),
        obligations=tuple(obligations),
        validity_reports=validity_reports,
        conformance_reports=tuple(conformance_reports),
        ni_report=ni_report,
        symbolic_conformance=tuple(symbolic_conformance),
        prepass=prepass_report,
    )
