"""Action conformance: atomic bodies implement their declared action.

The AtomicShr/AtomicUnq rules require that if ``I(v)`` holds before the
block, ``I(f_a(v, arg))`` holds after it.  With the canonical points-to
invariant this means: running the atomic body from a heap where the
resource cell holds ``v`` must leave the cell holding exactly
``f_a(v, arg)``, where ``arg`` is the annotated argument expression
evaluated in the pre-state.

HyperViper discharges this against the data structure's separation-logic
specification via SMT; we discharge it by *semantic sampling*: execute the
body on every value of the specification's small-scope value domain, with
the body's free variables drawn from a sampling pool, and compare the
cell's final value against the action function.  Samples whose variable
assignment makes the body's expressions ill-typed are skipped (the pool
mixes integers and structured values); at least one well-typed sample per
resource value is required.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from ..lang.ast import Atomic, command_fv, expr_fv
from ..lang.interpreter import AbortError, run
from ..lang.semantics import EvaluationError, evaluate
from .declarations import ResourceDecl

_CELL = 1  # fixed heap address for the resource cell during sampling


@dataclass(frozen=True)
class ConformanceFailure:
    action: str
    value: Any
    store: dict
    expected: Any
    actual: Any

    def __str__(self) -> str:
        return (
            f"atomic body does not implement {self.action}: from value {self.value!r} "
            f"with store {self.store!r}, expected {self.expected!r} but body produced "
            f"{self.actual!r}"
        )


@dataclass(frozen=True)
class ConformanceReport:
    action: str
    failures: tuple[ConformanceFailure, ...]
    samples_checked: int

    @property
    def ok(self) -> bool:
        return not self.failures and self.samples_checked > 0

    def __str__(self) -> str:
        if self.ok:
            return f"{self.action}: conforms ({self.samples_checked} samples)"
        if not self.samples_checked:
            return f"{self.action}: NO well-typed samples — cannot check conformance"
        return f"{self.action}: {len(self.failures)} failures, e.g. {self.failures[0]}"


def check_conformance(
    decl: ResourceDecl,
    atomic: Atomic,
    samples_per_value: int = 6,
    seed: int = 0,
    stop_at_first: bool = True,
) -> ConformanceReport:
    """Check one annotated atomic block against its action function."""
    action = decl.spec.action(atomic.action)
    rng = random.Random(seed)
    free = sorted(
        (command_fv(atomic.body) | expr_fv(atomic.argument)) - {decl.location_var}
    )
    pool = _sampling_pool(decl)
    failures: list[ConformanceFailure] = []
    checked = 0
    for value in decl.spec.value_domain:
        for _ in range(samples_per_value):
            store = {name: rng.choice(pool) for name in free}
            store[decl.location_var] = _CELL
            if atomic.when is not None:
                # Blocked configurations never execute the body; the action
                # only needs to be implemented on guard-enabled states.
                try:
                    enabled = evaluate(atomic.when, store, {_CELL: value})
                except (EvaluationError, TypeError, AttributeError, IndexError, KeyError):
                    continue
                if not enabled:
                    continue
            try:
                arg = evaluate(atomic.argument, store)
                expected = action.apply(value, arg)
                result = run(atomic.body, inputs=store, heap={_CELL: value})
                actual = result.heap.get(_CELL)
            except (EvaluationError, AbortError, TypeError, AttributeError, IndexError, KeyError):
                continue  # ill-typed sample; try another
            checked += 1
            if actual != expected:
                failures.append(ConformanceFailure(action.name, value, store, expected, actual))
                if stop_at_first:
                    return ConformanceReport(action.name, tuple(failures), checked)
    return ConformanceReport(action.name, tuple(failures), checked)


def _sampling_pool(decl: ResourceDecl) -> list:
    """Values to draw body variables from: small integers plus the
    components of the action argument domains."""
    pool: list = [0, 1, 2, 3, -1]
    for action in decl.spec.actions:
        for arg in decl.spec.arg_domain(action.name):
            pool.append(arg)
            if isinstance(arg, tuple):
                pool.extend(arg)
    unique: list = []
    for value in pool:
        if not any(value == other and type(value) == type(other) for other in unique):
            unique.append(value)
    return unique
