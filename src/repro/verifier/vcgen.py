"""Verification-condition generation for atomic blocks.

HyperViper encodes its proof obligations into the Viper intermediate
language and discharges them with Z3.  This module reproduces that
pipeline for the obligation at the heart of the Atomic rules: *the body
of an annotated atomic block implements its declared action*,

.. code-block:: text

    { I(v) }  c  { I(f_a(v, arg)) }      with I(v) = cell ↦ v

by symbolic execution instead of the sampling of
:mod:`repro.verifier.conformance`:

1. the body is executed symbolically over terms — program variables map
   to symbolic variables, the resource cell's content is the symbolic
   value ``__cell``, branches produce ``ite`` terms;
2. the obligation becomes one term,
   ``post_cell == f_a(__cell, arg_term)``, with the action function
   registered as an interpreted operation;
3. :func:`repro.smt.solver.check_validity` discharges it — enumerating
   the specification's declared value domain for ``__cell`` and a
   widened integer scope for the body's inputs, after the DPLL/EUF fast
   paths.

Compared to sampling, symbolic conformance covers *all* paths of the
body by construction (every branch contributes an ``ite``) and yields a
term-level counterexample on failure.  The two checkers are
cross-validated in ``tests/unit/test_vcgen.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ..lang.ast import (
    Assign,
    Atomic,
    Command,
    If,
    Load,
    Seq,
    Skip,
    Store,
    Var,
    While,
    command_fv,
    expr_fv,
)
from ..smt.intern import register_cache
from ..smt.solver import Result, Verdict, check_validity
from ..smt.sorts import INT, Scope, Sort
from ..smt.terms import App, Const, OPERATIONS, SymVar, Term, eq, from_expr
from .declarations import ResourceDecl

#: Symbolic name of the resource cell's pre-state value.
CELL = "__cell"


class VCError(Exception):
    """The atomic body is outside the symbolically executable fragment."""


@dataclass
class _SymState:
    """Symbolic state: variable terms plus the resource cell's term."""

    env: Dict[str, Term]
    cell: Term

    def copy(self) -> "_SymState":
        return _SymState(dict(self.env), self.cell)


def _merge(condition: Term, then_state: _SymState, else_state: _SymState) -> _SymState:
    env: Dict[str, Term] = {}
    for name in set(then_state.env) | set(else_state.env):
        then_term = then_state.env.get(name, SymVar(name, INT))
        else_term = else_state.env.get(name, SymVar(name, INT))
        env[name] = then_term if then_term == else_term else App(
            "ite", (condition, then_term, else_term)
        )
    cell = (
        then_state.cell
        if then_state.cell == else_state.cell
        else App("ite", (condition, then_state.cell, else_state.cell))
    )
    return _SymState(env, cell)


def symbolic_exec(cmd: Command, state: _SymState, location_var: str) -> _SymState:
    """Symbolically execute a straight-line/branching command.

    Loads and stores must go through the resource location variable (the
    canonical ``I(v) = cell ↦ v`` invariant); loops and nested atomics
    are outside the fragment.
    """
    if isinstance(cmd, Skip):
        return state
    if isinstance(cmd, Seq):
        return symbolic_exec(cmd.second, symbolic_exec(cmd.first, state, location_var), location_var)
    if isinstance(cmd, Assign):
        new_state = state.copy()
        new_state.env[cmd.target] = from_expr(cmd.expr, state.env)
        return new_state
    if isinstance(cmd, Load):
        if not (isinstance(cmd.address, Var) and cmd.address.name == location_var):
            raise VCError(
                f"load {cmd} does not read the resource cell [{location_var}]"
            )
        new_state = state.copy()
        new_state.env[cmd.target] = state.cell
        return new_state
    if isinstance(cmd, Store):
        if not (isinstance(cmd.address, Var) and cmd.address.name == location_var):
            raise VCError(
                f"store {cmd} does not write the resource cell [{location_var}]"
            )
        new_state = state.copy()
        new_state.cell = from_expr(cmd.expr, state.env)
        return new_state
    if isinstance(cmd, If):
        condition = from_expr(cmd.condition, state.env)
        then_state = symbolic_exec(cmd.then_branch, state.copy(), location_var)
        else_state = symbolic_exec(cmd.else_branch, state.copy(), location_var)
        return _merge(condition, then_state, else_state)
    if isinstance(cmd, While):
        raise VCError("loops inside atomic blocks are outside the symbolic fragment")
    raise VCError(f"{type(cmd).__name__} inside an atomic block is outside the fragment")


@dataclass(frozen=True)
class ConformanceVC:
    """The symbolic conformance obligation of one atomic block."""

    action: str
    formula: Term
    cell_variable: str
    free_inputs: Tuple[str, ...]

    def __str__(self) -> str:
        return f"VC[{self.action}]: {self.formula}"


def conformance_vc(decl: ResourceDecl, atomic: Atomic) -> ConformanceVC:
    """Build ``post_cell == f_a(__cell, arg)`` for an annotated block."""
    if atomic.action is None:
        raise VCError("atomic block has no action annotation")
    action = decl.spec.action(atomic.action)
    op_name = f"f_{decl.spec.name}_{action.name}"
    OPERATIONS.setdefault(op_name, action.apply)

    from ..lang.ast import command_mod

    mentioned = sorted(
        (command_fv(atomic.body) | expr_fv(atomic.argument)) - {decl.location_var}
    )
    inputs = sorted(
        (command_fv(atomic.body) - command_mod(atomic.body) | expr_fv(atomic.argument))
        - {decl.location_var}
    )
    env: Dict[str, Term] = {name: SymVar(name, INT) for name in mentioned}
    initial = _SymState(env, SymVar(CELL, INT))
    final = symbolic_exec(atomic.body, initial, decl.location_var)
    arg_term = from_expr(atomic.argument, env)
    expected = App(op_name, (SymVar(CELL, INT), arg_term))
    return ConformanceVC(
        action=action.name,
        formula=eq(final.cell, expected),
        cell_variable=CELL,
        free_inputs=tuple(inputs),
    )


@dataclass(frozen=True)
class _FiniteSort(Sort):
    """A sort enumerating a fixed tuple of values (the spec's domain)."""

    values: Tuple[Any, ...]

    def domain(self, scope: Scope) -> Iterator[Any]:
        return iter(self.values)

    def __str__(self) -> str:
        return f"Finite({len(self.values)})"


#: Per-specification discharge parameters, memoized by spec identity (the
#: stored strong reference keeps the id stable).  Specs are built once and
#: re-discharged for every atomic block and every proof outline, so the
#: widened-scope/finite-sort construction is hoisted out of the hot path;
#: the resulting scope+sorts are also *canonical* objects, which lets the
#: cross-call validity cache (:mod:`repro.smt.cache`) key repeated
#: discharges of the same VC to an O(1) hit.
_DISCHARGE_PARAMS: Dict[int, Tuple[Any, Tuple[int, ...], "_FiniteSort"]] = register_cache({})


def _spec_discharge_params(spec: Any) -> Tuple[Tuple[int, ...], "_FiniteSort"]:
    cached = _DISCHARGE_PARAMS.get(id(spec))
    if cached is not None and cached[0] is spec:
        return cached[1], cached[2]
    extra_ints = []
    for action in spec.actions:
        for arg in spec.arg_domain(action.name):
            if isinstance(arg, int) and not isinstance(arg, bool):
                extra_ints.append(arg)
            if isinstance(arg, tuple):
                extra_ints.extend(
                    x for x in arg if isinstance(x, int) and not isinstance(x, bool)
                )
    params = (tuple(extra_ints), _FiniteSort(tuple(spec.value_domain)))
    _DISCHARGE_PARAMS[id(spec)] = (spec, params[0], params[1])
    return params


def discharge_conformance(
    decl: ResourceDecl,
    atomic: Atomic,
    scope: Optional[Scope] = None,
    session: Optional[Any] = None,
) -> Result:
    """Generate and discharge the conformance VC of an atomic block.

    The cell variable ranges over the specification's declared value
    domain; the body's free inputs range over the solver scope widened
    with the argument-domain components.  REFUTED results carry a
    concrete assignment (cell value + inputs) reproducing the mismatch.

    Because terms are hash-consed and the scope/sorts here are memoized
    per spec, re-discharging a syntactically identical VC (the common
    case across proof outlines and repeated verifier runs) is answered
    by the cross-call validity cache; the result's ``from_cache`` flag
    records when that happened.  ``session`` (a
    :class:`repro.smt.session.SolverSession`) routes the solver fast
    paths through one shared incremental solver, so the obligations of a
    verification run reuse each other's conversion and search state.
    """
    vc = conformance_vc(decl, atomic)
    extra_ints, cell_sort = _spec_discharge_params(decl.spec)
    scope = (scope or Scope()).widen(extra_ints)
    sorts: Dict[str, Sort] = {CELL: cell_sort}
    return check_validity(vc.formula, scope=scope, sorts=sorts, session=session)


def symbolic_conformance_ok(decl: ResourceDecl, atomic: Atomic) -> Optional[bool]:
    """Convenience: True/False where decidable, None outside the fragment
    (caller falls back to sampling conformance)."""
    try:
        result = discharge_conformance(decl, atomic)
    except VCError:
        return None
    if result.verdict == Verdict.REFUTED:
        return False
    if result.verdict in (Verdict.PROVED, Verdict.BOUNDED):
        return True
    return None
