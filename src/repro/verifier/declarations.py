"""Program-level verification declarations.

A :class:`ResourceDecl` binds a resource specification to a program: the
name used by ``share``/``unshare`` commands, the variable holding the
allocated heap location of the shared cell, and the *low views* — names of
pure functions ``f`` such that ``f(v)`` is low whenever ``α(v)`` is low
(used by the taint analysis to type reads after unsharing; e.g. ``keys``
for the key-set abstraction of Fig. 4 left).

A :class:`ProgramSpec` is the full verification problem: the program, its
resources, and the input sensitivity labelling (Def. 2.1's ``I_l``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from ..lang.ast import Command
from ..spec.resource import ResourceSpecification


@dataclass(frozen=True)
class ResourceDecl:
    """A shared resource declaration for one program."""

    name: str
    spec: ResourceSpecification
    location_var: str
    low_views: Tuple[str, ...] = ()

    def has_identity_abstraction(self) -> bool:
        """True iff α is the identity on the declared value domain, in
        which case the raw resource value is low after unsharing."""
        return all(self.spec.abstraction(value) == value for value in self.spec.value_domain)


@dataclass(frozen=True)
class ProgramSpec:
    """A verification problem: program + resources + input labelling.

    ``low_channels`` lists the output channels the attacker observes;
    ``None`` means every channel is observable (the paper's single public
    output).  Prints on unobservable channels are exempt from the lowness
    check — this is the I/O-sensitivity extension of Sec. 3.7 and the
    mechanism behind multi-level verification (:mod:`repro.security.lattice`).
    """

    name: str
    program: Command
    resources: Tuple[ResourceDecl, ...]
    low_inputs: FrozenSet[str] = frozenset()
    high_inputs: FrozenSet[str] = frozenset()
    low_channels: "FrozenSet[str] | None" = None

    def channel_observable(self, channel: str) -> bool:
        return self.low_channels is None or channel in self.low_channels

    def resource_by_name(self, name: str) -> ResourceDecl:
        for decl in self.resources:
            if decl.name == name:
                return decl
        raise KeyError(f"{self.name}: no resource named {name!r}")

    def resource_by_action(self, action_name: str) -> ResourceDecl:
        matches = [
            decl
            for decl in self.resources
            if any(action.name == action_name for action in decl.spec.actions)
        ]
        if not matches:
            raise KeyError(f"{self.name}: no resource has an action named {action_name!r}")
        if len(matches) > 1:
            raise KeyError(
                f"{self.name}: action {action_name!r} is ambiguous between "
                f"{[decl.name for decl in matches]}"
            )
        return matches[0]

    def resource_by_location(self, location_var: str) -> "ResourceDecl | None":
        for decl in self.resources:
            if decl.location_var == location_var:
                return decl
        return None
