"""The core static analysis of the automated verifier.

A relational taint analysis over the object language that discharges the
four central properties of Sec. 2.2/2.3 at the program level:

1. *Low initial abstract value* — the value stored in the resource cell at
   ``share`` must be low;
2. *Number of modifications is low* — atomic actions under high branch or
   loop conditions produce a **retroactive obligation** (the paper checks
   the count when unsharing; we discharge the obligation with the bounded
   relational checker, see :mod:`repro.verifier.frontend`);
3. *Modification arguments satisfy the precondition* — the projections an
   action declares low must be low-tainted at the call site, or again a
   retroactive obligation is recorded (the pipeline pattern of Sec. 5);
4. *Commutativity* — delegated to the specification validity checker.

The analysis also enforces the CSL discipline that makes the logic apply:
the shared cell is only accessed inside annotated atomic blocks while
shared, every modification goes through a declared action, and unique
actions are used by at most one thread of any parallel composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
    node_pos,
)
from ..spec.actions import Action
from .declarations import ProgramSpec, ResourceDecl
from .taint import HIGH, LOW, Taint, abstract, join, join_all

# Projection names (Action.low_projections) mapped to pair components of a
# ``pair(a, b)`` argument expression; None means the whole argument.
PROJECTION_INDEX: dict[str, Optional[int]] = {
    "arg": None,
    "fst": 0,
    "snd": 1,
    "key": 0,
    "salary": 1,
    "amount": 1,
}


@dataclass
class Obligation:
    """A proof obligation deferred to retroactive (bounded) checking."""

    kind: str  # 'retroactive-count' | 'retroactive-pre' | 'unary-requires'
    description: str
    discharged: bool = False
    method: str = ""

    def __str__(self) -> str:
        status = f"discharged by {self.method}" if self.discharged else "OPEN"
        return f"[{self.kind}] {self.description} ({status})"


@dataclass
class AnalysisState:
    """Mutable abstract state of the taint walk."""

    env: dict[str, Taint] = field(default_factory=dict)
    heap: dict[str, Taint] = field(default_factory=dict)  # keyed by location var
    phase: dict[str, str] = field(default_factory=dict)  # resource -> phase

    def copy(self) -> "AnalysisState":
        return AnalysisState(dict(self.env), dict(self.heap), dict(self.phase))

    def var(self, name: str) -> Taint:
        return self.env.get(name, LOW)  # uninitialized variables are 0 in both runs

    def join_with(self, other: "AnalysisState") -> None:
        for name in set(self.env) | set(other.env):
            self.env[name] = join(self.var(name), other.var(name))
        for name in set(self.heap) | set(other.heap):
            self.heap[name] = join(self.heap.get(name, LOW), other.heap.get(name, LOW))
        for name in set(self.phase) | set(other.phase):
            if self.phase.get(name) != other.phase.get(name):
                raise AnalysisError(
                    f"resource {name!r} is in different phases on joining control paths"
                )

    def equivalent(self, other: "AnalysisState") -> bool:
        names = set(self.env) | set(other.env)
        if any(self.var(name) != other.var(name) for name in names):
            return False
        locations = set(self.heap) | set(other.heap)
        return all(self.heap.get(loc, LOW) == other.heap.get(loc, LOW) for loc in locations)


class AnalysisError(Exception):
    """An unconditional verification error found by the static analysis."""


def _cite(node) -> str:
    """`` (at line L, col C)`` when the parser stamped a position, else ``""``."""
    pos = node_pos(node)
    return f" (at {pos})" if pos is not None else ""


@dataclass
class AnalysisReport:
    errors: list[str] = field(default_factory=list)
    obligations: list[Obligation] = field(default_factory=list)
    atomic_blocks: list[Atomic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors


class TaintAnalyzer:
    """Walks a program, tracking relational taints and CSL discipline."""

    def __init__(self, program_spec: ProgramSpec) -> None:
        self._spec = program_spec
        self.report = AnalysisReport()
        # Loop fixpoints revisit atomic blocks; record each node only once.
        self._seen_atomics: set[int] = set()
        self._obligation_keys: dict[tuple, Obligation] = {}

    # -- entry point ---------------------------------------------------------

    def analyze(self) -> AnalysisReport:
        state = AnalysisState()
        for name in self._spec.low_inputs:
            state.env[name] = LOW
        for name in self._spec.high_inputs:
            state.env[name] = HIGH
        for decl in self._spec.resources:
            state.phase[decl.name] = "inactive"
        self._check_unique_usage(self._spec.program)
        try:
            self._walk(self._spec.program, state, high_ctx=False, in_atomic=None)
        except AnalysisError as error:
            self.report.errors.append(str(error))
        return self.report

    # -- expression taint -----------------------------------------------------

    def expr_taint(self, expr: Expr, state: AnalysisState) -> Taint:
        if isinstance(expr, Lit):
            return LOW
        if isinstance(expr, Var):
            return state.var(expr.name)
        if isinstance(expr, UnOp):
            return self.expr_taint(expr.operand, state)
        if isinstance(expr, BinOp):
            left = self.expr_taint(expr.left, state)
            right = self.expr_taint(expr.right, state)
            combined = join(left, right)
            # Arithmetic on abstract values loses the view structure.
            return HIGH if combined.is_abstract() else combined
        if isinstance(expr, Call):
            return self._call_taint(expr, state)
        raise TypeError(f"not an expression: {expr!r}")

    def _call_taint(self, expr: Call, state: AnalysisState) -> Taint:
        taints = [self.expr_taint(arg, state) for arg in expr.args]
        abstracts = [taint for taint in taints if taint.is_abstract()]
        if abstracts:
            if len(abstracts) == 1 and all(t.is_low() or t.is_abstract() for t in taints):
                resource = abstracts[0].resource
                decl = self._spec.resource_by_name(resource)
                if expr.function in decl.low_views:
                    return LOW
            return HIGH
        return join_all(*taints)

    # -- command walk ---------------------------------------------------------

    def _walk(
        self,
        cmd: Command,
        state: AnalysisState,
        high_ctx: bool,
        in_atomic: Optional[ResourceDecl],
    ) -> None:
        if isinstance(cmd, Skip):
            return
        if isinstance(cmd, Assign):
            taint = self.expr_taint(cmd.expr, state)
            state.env[cmd.target] = HIGH if high_ctx else taint
            return
        if isinstance(cmd, Alloc):
            state.env[cmd.target] = LOW
            state.heap[cmd.target] = HIGH if high_ctx else self.expr_taint(cmd.expr, state)
            return
        if isinstance(cmd, Load):
            state.env[cmd.target] = self._load_taint(cmd, state, high_ctx, in_atomic)
            return
        if isinstance(cmd, Store):
            self._store(cmd, state, high_ctx, in_atomic)
            return
        if isinstance(cmd, Seq):
            self._walk(cmd.first, state, high_ctx, in_atomic)
            self._walk(cmd.second, state, high_ctx, in_atomic)
            return
        if isinstance(cmd, If):
            condition_taint = self.expr_taint(cmd.condition, state)
            branch_high = high_ctx or not condition_taint.is_low()
            then_state = state.copy()
            else_state = state.copy()
            self._walk(cmd.then_branch, then_state, branch_high, in_atomic)
            self._walk(cmd.else_branch, else_state, branch_high, in_atomic)
            then_state.join_with(else_state)
            state.env, state.heap, state.phase = then_state.env, then_state.heap, then_state.phase
            return
        if isinstance(cmd, While):
            self._walk_while(cmd, state, high_ctx, in_atomic)
            return
        if isinstance(cmd, Par):
            left_state = state.copy()
            right_state = state.copy()
            self._walk(cmd.left, left_state, high_ctx, in_atomic)
            self._walk(cmd.right, right_state, high_ctx, in_atomic)
            left_state.join_with(right_state)
            state.env, state.heap, state.phase = left_state.env, left_state.heap, left_state.phase
            return
        if isinstance(cmd, Atomic):
            self._walk_atomic(cmd, state, high_ctx, in_atomic)
            return
        if isinstance(cmd, Share):
            decl = self._spec.resource_by_name(cmd.resource)
            if state.phase.get(decl.name) != "inactive":
                raise AnalysisError(f"share {decl.name}: resource is already {state.phase.get(decl.name)}")
            initial = state.heap.get(decl.location_var, HIGH)
            if not initial.is_low():
                self.report.errors.append(
                    f"share {decl.name}: initial resource value is not low "
                    f"(property 1 — low initial abstract value)"
                )
            state.phase[decl.name] = "shared"
            return
        if isinstance(cmd, Unshare):
            decl = self._spec.resource_by_name(cmd.resource)
            if state.phase.get(decl.name) != "shared":
                raise AnalysisError(f"unshare {decl.name}: resource is not shared")
            state.phase[decl.name] = "unshared"
            return
        if isinstance(cmd, Print):
            if not self._spec.channel_observable(cmd.channel):
                return  # unobservable channel: no lowness obligation
            if high_ctx:
                self.report.errors.append(
                    f"print({cmd.expr}): output statement under a high branch condition{_cite(cmd)}"
                )
            taint = self.expr_taint(cmd.expr, state)
            if not taint.is_low():
                self.report.errors.append(
                    f"print({cmd.expr}): printed value has taint {taint} — low output may leak{_cite(cmd)}"
                )
            return
        if isinstance(cmd, (Fork, Join)):
            raise AnalysisError(
                f"{cmd}: the static analysis works on the structured core "
                f"calculus; desugar fork/join first (verify_threaded or "
                f"repro.lang.desugar.threaded_equivalent)"
            )
        raise TypeError(f"not a command: {cmd!r}")

    def _walk_while(
        self,
        cmd,
        state: AnalysisState,
        high_ctx: bool,
        in_atomic: Optional[ResourceDecl],
    ) -> None:
        for _ in range(64):
            condition_taint = self.expr_taint(cmd.condition, state)
            body_state = state.copy()
            self._walk(cmd.body, body_state, high_ctx or not condition_taint.is_low(), in_atomic)
            body_state.join_with(state)
            if body_state.equivalent(state):
                return
            state.env, state.heap = body_state.env, body_state.heap
        raise AnalysisError(f"while ({cmd.condition}): taint fixpoint did not converge")

    # -- heap access ------------------------------------------------------------

    def _location_decl(self, address: Expr) -> Optional[ResourceDecl]:
        if isinstance(address, Var):
            return self._spec.resource_by_location(address.name)
        return None

    def _load_taint(
        self,
        cmd: Load,
        state: AnalysisState,
        high_ctx: bool,
        in_atomic: Optional[ResourceDecl],
    ) -> Taint:
        decl = self._location_decl(cmd.address)
        if decl is not None:
            phase = state.phase.get(decl.name, "inactive")
            if phase == "shared":
                if in_atomic is not decl:
                    raise AnalysisError(
                        f"read of shared cell [{cmd.address}] outside an atomic block "
                        f"for {decl.name}{_cite(cmd)}"
                    )
                # Inside the atomic block only the invariant is known —
                # shared data is implicitly high (Sec. 2.6).
                return HIGH
            if phase == "unshared":
                if decl.has_identity_abstraction():
                    return LOW
                return abstract(decl.name)
            base = state.heap.get(decl.location_var, HIGH)
            return HIGH if high_ctx else base
        if isinstance(cmd.address, Var):
            base = state.heap.get(cmd.address.name, HIGH)
            return HIGH if high_ctx else base
        return HIGH

    def _store(
        self,
        cmd: Store,
        state: AnalysisState,
        high_ctx: bool,
        in_atomic: Optional[ResourceDecl],
    ) -> None:
        decl = self._location_decl(cmd.address)
        value_taint = self.expr_taint(cmd.expr, state)
        if decl is not None:
            phase = state.phase.get(decl.name, "inactive")
            if phase == "shared":
                if in_atomic is not decl:
                    raise AnalysisError(
                        f"write to shared cell [{cmd.address}] outside an atomic block "
                        f"for {decl.name}{_cite(cmd)}"
                    )
                return  # the action-conformance check validates the effect
            key = decl.location_var
        elif isinstance(cmd.address, Var):
            key = cmd.address.name
        else:
            return  # writes through computed addresses: no tracking (conservative)
        if high_ctx:
            state.heap[key] = HIGH
        else:
            state.heap[key] = value_taint

    # -- atomic blocks -------------------------------------------------------------

    def _walk_atomic(
        self,
        cmd: Atomic,
        state: AnalysisState,
        high_ctx: bool,
        in_atomic: Optional[ResourceDecl],
    ) -> None:
        if in_atomic is not None:
            raise AnalysisError("nested atomic blocks are not supported")
        if cmd.action is None:
            if any(phase == "shared" for phase in state.phase.values()):
                raise AnalysisError(
                    "unannotated atomic block while a resource is shared: every "
                    "modification must name its action"
                )
            self._walk(cmd.body, state, high_ctx, None)
            return
        decl = self._spec.resource_by_action(cmd.action)
        if state.phase.get(decl.name) != "shared":
            raise AnalysisError(
                f"atomic [{cmd.action}]: resource {decl.name} is not shared here "
                f"(no guard exists){_cite(cmd)}"
            )
        if id(cmd) not in self._seen_atomics:
            self._seen_atomics.add(id(cmd))
            self.report.atomic_blocks.append(cmd)
        action = decl.spec.action(cmd.action)
        # Obligations are keyed so loop-fixpoint revisits (where taints may
        # have risen) update rather than duplicate them.
        if cmd.when is not None:
            self._add_obligation(
                (id(cmd), "blocking-guard"),
                Obligation(
                    "blocking-guard",
                    f"atomic [{cmd.action}] has a blocking guard ({cmd.when}); its effect "
                    f"on schedules must be shown benign (App. D) — discharged by bounded "
                    f"checking",
                ),
            )
        if high_ctx:
            self._add_obligation(
                (id(cmd), "retroactive-count"),
                Obligation(
                    "retroactive-count",
                    f"atomic [{cmd.action}] occurs under a high condition; the number of "
                    f"performed actions must be shown low retroactively (Sec. 2.5)",
                ),
            )
        self._check_argument_lowness(action, cmd, state)
        if action.relational_requires is not None:
            self._add_obligation(
                (id(cmd), "retroactive-relational"),
                Obligation(
                    "retroactive-relational",
                    f"action {action.name} has a general relational precondition "
                    f"(e.g. value-dependent sensitivity, Sec. 3.4) that the taint "
                    f"walk cannot discharge; checked retroactively at unshare",
                ),
            )
        if action.unary_requires is not None:
            self._add_obligation(
                (id(cmd), "unary-requires"),
                Obligation(
                    "unary-requires",
                    f"action {action.name} has a unary argument constraint; discharged by "
                    f"bounded checking of the recorded arguments",
                ),
            )
        self._walk(cmd.body, state, high_ctx, decl)

    def _add_obligation(self, key: tuple, obligation: Obligation) -> None:
        existing = self._obligation_keys.get(key)
        if existing is None:
            self._obligation_keys[key] = obligation
            self.report.obligations.append(obligation)
        else:
            existing.description = obligation.description

    def _check_argument_lowness(self, action: Action, cmd: Atomic, state: AnalysisState) -> None:
        for projection_name, _ in action.low_projections:
            taint = self._projection_taint(projection_name, cmd.argument, state)
            if not taint.is_low():
                self._add_obligation(
                    (id(cmd), "retroactive-pre", projection_name),
                    Obligation(
                        "retroactive-pre",
                        f"atomic [{cmd.action}({cmd.argument})]: projection "
                        f"{projection_name!r} has taint {taint}; precondition must be "
                        f"established retroactively at unshare (Sec. 2.5)",
                    ),
                )

    def _projection_taint(self, projection_name: str, argument: Expr, state: AnalysisState) -> Taint:
        index = PROJECTION_INDEX.get(projection_name)
        if (
            index is not None
            and isinstance(argument, Call)
            and argument.function == "pair"
            and len(argument.args) == 2
        ):
            return self.expr_taint(argument.args[index], state)
        return self.expr_taint(argument, state)

    # -- unique-action discipline -----------------------------------------------------

    def _check_unique_usage(self, cmd: Command) -> None:
        """Unique guards are unsplittable: a unique action may not occur in
        both branches of any parallel composition."""

        def actions_used(command: Command) -> frozenset[str]:
            if isinstance(command, Atomic) and command.action is not None:
                return frozenset({command.action})
            if isinstance(command, Seq):
                return actions_used(command.first) | actions_used(command.second)
            if isinstance(command, If):
                return actions_used(command.then_branch) | actions_used(command.else_branch)
            if isinstance(command, While):
                return actions_used(command.body)
            if isinstance(command, Par):
                return actions_used(command.left) | actions_used(command.right)
            if isinstance(command, Atomic):
                return actions_used(command.body)
            return frozenset()

        def check(command: Command) -> None:
            if isinstance(command, Par):
                overlap = actions_used(command.left) & actions_used(command.right)
                for name in sorted(overlap):
                    try:
                        decl = self._spec.resource_by_action(name)
                    except KeyError:
                        continue
                    if decl.spec.action(name).is_unique:
                        self.report.errors.append(
                            f"unique action {name!r} is used by both branches of a parallel "
                            f"composition — unique guards cannot be split (Sec. 2.7)"
                        )
                check(command.left)
                check(command.right)
            elif isinstance(command, Seq):
                check(command.first)
                check(command.second)
            elif isinstance(command, If):
                check(command.then_branch)
                check(command.else_branch)
            elif isinstance(command, While):
                check(command.body)
            elif isinstance(command, Atomic):
                check(command.body)

        check(cmd)
