"""Structured diagnostics for the static pre-verification layer.

Every analysis in :mod:`repro.analysis` (lockset race detection, flow
analysis, lint rules) reports findings as :class:`Diagnostic` values: a
stable code, a severity, an optional source span, and a human-readable
message.  Diagnostics are JSON-round-trippable (``to_wire``/``from_wire``)
so they travel over the daemon protocol unchanged, and rendering is
deterministic (sorted by source, position, code, message) so CI output
and golden tests are stable.

Diagnostic codes
----------------

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
``R001``  error     data race: conflicting parallel accesses, empty lockset
``R002``  error     shared-cell access outside an atomic block
``R003``  error     unique action used by both branches of a ``||``
``F001``  error     explicit flow: secret-tainted value reaches an output
``F002``  error     implicit flow: output under a secret-dependent branch
``L001``  warning   variable is written but never read
``L002``  warning   unreachable code after a non-terminating loop
``L003``  warning   shadowing: procedure parameter hides an outer variable
``L004``  warning   annotated atomic block never touches the shared cell
``L005``  error     ``fork`` without a matching ``join``
``L006``  warning   declared low view is never applied by the program
``P001``  error     source file does not parse
========  ========  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..lang.ast import Node, node_pos

#: Wire-schema version for JSON diagnostic reports.
DIAGNOSTICS_SCHEMA_VERSION = 1

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analysis or lint rule."""

    code: str
    severity: str  # 'error' | 'warning' | 'info'
    message: str
    source: str = "<program>"
    line: Optional[int] = None
    column: Optional[int] = None

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.source, self.line or 0, self.column or 0, self.code, self.message)

    def render(self) -> str:
        """One-line text rendering, ``source:line:col: severity[code]: message``."""
        where = self.source
        if self.line is not None:
            where += f":{self.line}"
            if self.column is not None:
                where += f":{self.column}"
        return f"{where}: {self.severity}[{self.code}]: {self.message}"

    def to_wire(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "source": self.source,
        }
        if self.line is not None:
            payload["line"] = self.line
        if self.column is not None:
            payload["column"] = self.column
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            code=str(payload["code"]),
            severity=str(payload["severity"]),
            message=str(payload["message"]),
            source=str(payload.get("source", "<program>")),
            line=payload.get("line"),
            column=payload.get("column"),
        )


def diagnostic_at(
    code: str,
    severity: str,
    message: str,
    node: Optional[Node] = None,
    source: str = "<program>",
) -> Diagnostic:
    """Build a diagnostic citing ``node``'s source position when it has one."""
    pos = node_pos(node) if node is not None else None
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        source=source,
        line=None if pos is None else pos.line,
        column=None if pos is None else pos.column,
    )


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return sorted(diagnostics, key=Diagnostic.sort_key)


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[str]:
    """The most severe level present, or ``None`` for an empty report."""
    best: Optional[str] = None
    for diagnostic in diagnostics:
        if best is None or _SEVERITY_RANK[diagnostic.severity] < _SEVERITY_RANK[best]:
            best = diagnostic.severity
    return best


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(diagnostic.is_error for diagnostic in diagnostics)


def severity_counts(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {name: 0 for name in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Deterministic multi-line text report (one :meth:`Diagnostic.render` per line)."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diagnostic.render() for diagnostic in ordered]
    counts = severity_counts(ordered)
    lines.append(
        f"{len(ordered)} diagnostic(s): "
        f"{counts['error']} error(s), {counts['warning']} warning(s), {counts['info']} info"
    )
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Deterministic JSON report with a schema version and severity summary."""
    ordered = sort_diagnostics(diagnostics)
    report = {
        "version": DIAGNOSTICS_SCHEMA_VERSION,
        "diagnostics": [diagnostic.to_wire() for diagnostic in ordered],
        "summary": severity_counts(ordered),
    }
    return json.dumps(report, indent=2, sort_keys=True)


# =============================================================================
# Baseline suppression
# =============================================================================


@dataclass
class Baseline:
    """A recorded set of accepted findings, keyed by ``(source, code)``.

    CI lints the shipped corpus with a baseline file: known findings are
    suppressed up to the recorded count per key, anything beyond that (a
    regression) still fails.  ``python -m repro lint --write-baseline``
    records the current findings.
    """

    allowed: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        allowed: Dict[Tuple[str, str], int] = {}
        for diagnostic in diagnostics:
            key = (diagnostic.source, diagnostic.code)
            allowed[key] = allowed.get(key, 0) + 1
        return cls(allowed)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text())
        allowed: Dict[Tuple[str, str], int] = {}
        for entry in payload.get("suppressions", ()):
            allowed[(str(entry["source"]), str(entry["code"]))] = int(entry.get("count", 1))
        return cls(allowed)

    def save(self, path: Path) -> None:
        suppressions = [
            {"source": source, "code": code, "count": count}
            for (source, code), count in sorted(self.allowed.items())
        ]
        payload = {"version": DIAGNOSTICS_SCHEMA_VERSION, "suppressions": suppressions}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def apply(self, diagnostics: Sequence[Diagnostic]) -> Tuple[List[Diagnostic], int]:
        """Split ``diagnostics`` into (kept, suppressed-count)."""
        remaining = dict(self.allowed)
        kept: List[Diagnostic] = []
        suppressed = 0
        for diagnostic in sort_diagnostics(diagnostics):
            key = (diagnostic.source, diagnostic.code)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                suppressed += 1
            else:
                kept.append(diagnostic)
        return kept, suppressed
