"""Flow-sensitive PC-taint analysis (Denning & Denning 1977).

A classic information-flow analysis over the object language, reusing the
taint lattice of :mod:`repro.verifier.taint`.  It tracks explicit flows
(secret values propagating through assignments and the heap) and implicit
flows (a *program-counter taint* raised inside branches and loops whose
condition depends on a secret), and returns one of two verdicts:

* ``secure`` — a *sound* claim: every observable output trace is a
  function of the low inputs alone, for every scheduler.  The verifier
  fast path may skip VC generation and SMT discharge entirely.
* ``unknown`` — the analysis cannot decide; the full abstract-
  commutativity pipeline (spec validity, taint + CSL discipline, action
  conformance, retroactive obligations) must run.

Soundness is bought with aggressive bail-outs: whenever a program uses a
feature whose security argument genuinely needs the paper's machinery
(interfering parallel branches, outputs inside ``||``, blocking guards,
address values escaping into arithmetic, dynamic ``fork``/``join``), the
verdict degrades to ``unknown`` with a recorded reason.  What remains —
programs whose parallel branches are non-interfering and whose outputs
are manifestly low — is decided by the taint walk:

* parallel branches with disjoint variable/heap footprints and no
  observable output commute with every interleaving, so the final state
  and the trace are schedule-independent;
* with a deterministic trace per input, low-equivalence of traces reduces
  to every printed value being low-tainted and no print occurring under a
  secret program counter.

Like the full verifier's taint stage, the analysis is **termination- and
abort-insensitive**: a secret may still influence *whether* the trace is
finite (e.g. a busy-wait loop on a high condition).  This matches the
observation model of ``security.noninterference``, which compares the
traces of terminating schedules only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
    command_fv,
    command_mod,
    expr_fv,
    node_pos,
)
from ..verifier.declarations import ProgramSpec
from ..verifier.taint import HIGH, LOW, Taint, join
from .diagnostics import Diagnostic, diagnostic_at
from .races import collect_accesses

#: Iteration bound for while-loop taint fixpoints (matches the verifier).
_FIXPOINT_BOUND = 64


@dataclass(frozen=True)
class FlowReport:
    """Outcome of the flow analysis."""

    verdict: str  # 'secure' | 'unknown'
    findings: Tuple[Diagnostic, ...] = ()  # potential leaks (F001/F002)
    reasons: Tuple[str, ...] = ()  # bail-out reasons, empty when decisive

    @property
    def secure(self) -> bool:
        return self.verdict == "secure"


class _Bailout(Exception):
    """Internal: abandon the walk, the verdict is ``unknown``."""


class _FlowAnalyzer:
    def __init__(
        self,
        low_inputs: Iterable[str],
        high_inputs: Iterable[str],
        observable: Callable[[str], bool],
        source: str,
    ) -> None:
        self._env: Dict[str, Taint] = {}
        self._heap: Dict[str, Taint] = {}
        self._addr_vars: Set[str] = set()
        self._observable = observable
        self._source = source
        self._reasons: List[str] = []
        self._findings: List[Diagnostic] = []
        for name in low_inputs:
            self._env[name] = LOW
        for name in high_inputs:
            self._env[name] = HIGH

    # -- plumbing ------------------------------------------------------------

    def _bail(self, message: str, node: Optional[Command] = None) -> None:
        pos = node_pos(node) if node is not None else None
        if pos is not None:
            message = f"{message} (at {pos})"
        self._reasons.append(message)
        raise _Bailout(message)

    def _var(self, name: str) -> Taint:
        # Uninitialized variables read as 0 in both runs: low.
        return self._env.get(name, LOW)

    def _taint(self, expr: Expr) -> Taint:
        if isinstance(expr, Lit):
            return LOW
        if isinstance(expr, Var):
            return self._var(expr.name)
        if isinstance(expr, UnOp):
            return self._taint(expr.operand)
        if isinstance(expr, BinOp):
            return join(self._taint(expr.left), self._taint(expr.right))
        if isinstance(expr, Call):
            taint = LOW
            for arg in expr.args:
                taint = join(taint, self._taint(arg))
            return taint
        raise TypeError(f"not an expression: {expr!r}")

    def _check_no_address_escape(self, expr: Expr, node: Command, context: str) -> None:
        escaped = expr_fv(expr) & self._addr_vars
        if escaped:
            self._bail(
                f"address value {sorted(escaped)[0]!r} escapes into {context} — "
                f"addresses are allocation-order dependent",
                node,
            )

    # -- state snapshots (for branch joins) -----------------------------------

    def _snapshot(self) -> Tuple[Dict[str, Taint], Dict[str, Taint]]:
        return dict(self._env), dict(self._heap)

    def _restore(self, snap: Tuple[Dict[str, Taint], Dict[str, Taint]]) -> None:
        self._env, self._heap = dict(snap[0]), dict(snap[1])

    def _join_into(self, other: Tuple[Dict[str, Taint], Dict[str, Taint]]) -> None:
        env, heap = other
        for name in set(self._env) | set(env):
            self._env[name] = join(self._env.get(name, LOW), env.get(name, LOW))
        for name in set(self._heap) | set(heap):
            self._heap[name] = join(self._heap.get(name, LOW), heap.get(name, LOW))

    def _state_equal(self, other: Tuple[Dict[str, Taint], Dict[str, Taint]]) -> bool:
        env, heap = other
        names = set(self._env) | set(env)
        if any(self._env.get(n, LOW) != env.get(n, LOW) for n in names):
            return False
        cells = set(self._heap) | set(heap)
        return all(self._heap.get(c, LOW) == heap.get(c, LOW) for c in cells)

    # -- command walk ---------------------------------------------------------

    def _walk(self, cmd: Command, pc: Taint, in_branch: bool) -> None:
        if isinstance(cmd, (Skip, Share, Unshare)):
            return
        if isinstance(cmd, Assign):
            if cmd.target in self._addr_vars:
                self._bail(f"address variable {cmd.target!r} is reassigned", cmd)
            self._check_no_address_escape(cmd.expr, cmd, "an assignment")
            self._env[cmd.target] = join(self._taint(cmd.expr), pc)
            return
        if isinstance(cmd, Alloc):
            if in_branch:
                # A cell allocated under a branch/loop/|| may not exist on
                # the joining path; accessing it there is a runtime fault.
                self._bail("allocation inside a branch, loop, or parallel composition", cmd)
            self._check_no_address_escape(cmd.expr, cmd, "an allocation initializer")
            self._addr_vars.add(cmd.target)
            self._env[cmd.target] = LOW
            self._heap[cmd.target] = join(self._taint(cmd.expr), pc)
            return
        if isinstance(cmd, Load):
            address = self._address_of(cmd)
            if cmd.target in self._addr_vars:
                self._bail(f"address variable {cmd.target!r} is reassigned", cmd)
            self._env[cmd.target] = join(self._heap.get(address, LOW), pc)
            return
        if isinstance(cmd, Store):
            address = self._address_of(cmd)
            self._check_no_address_escape(cmd.expr, cmd, "a heap write")
            self._heap[address] = join(self._taint(cmd.expr), pc)
            return
        if isinstance(cmd, Seq):
            self._walk(cmd.first, pc, in_branch)
            self._walk(cmd.second, pc, in_branch)
            return
        if isinstance(cmd, If):
            self._check_no_address_escape(cmd.condition, cmd, "a branch condition")
            branch_pc = join(pc, self._taint(cmd.condition))
            before = self._snapshot()
            self._walk(cmd.then_branch, branch_pc, True)
            then_state = self._snapshot()
            self._restore(before)
            self._walk(cmd.else_branch, branch_pc, True)
            self._join_into(then_state)
            return
        if isinstance(cmd, While):
            self._walk_while(cmd, pc)
            return
        if isinstance(cmd, Par):
            self._walk_par(cmd, pc)
            return
        if isinstance(cmd, Atomic):
            if cmd.when is not None:
                self._bail(
                    "blocking guard on an atomic block — schedule effects need App. D reasoning",
                    cmd,
                )
            self._walk(cmd.body, pc, in_branch)
            return
        if isinstance(cmd, Print):
            if not self._observable(cmd.channel):
                return
            self._check_no_address_escape(cmd.expr, cmd, "an output")
            if not pc.is_low():
                self._findings.append(
                    diagnostic_at(
                        "F002",
                        "error",
                        f"print({cmd.expr}): output under a secret-dependent branch "
                        f"or loop condition (implicit flow)",
                        node=cmd,
                        source=self._source,
                    )
                )
            elif not self._taint(cmd.expr).is_low():
                self._findings.append(
                    diagnostic_at(
                        "F001",
                        "error",
                        f"print({cmd.expr}): printed value is secret-tainted (explicit flow)",
                        node=cmd,
                        source=self._source,
                    )
                )
            return
        if isinstance(cmd, (Fork, Join)):
            self._bail("dynamic fork/join — desugar to the structured calculus first", cmd)
        raise TypeError(f"not a command: {cmd!r}")

    def _address_of(self, cmd) -> str:
        address = cmd.address
        if not isinstance(address, Var):
            self._bail("heap access through a computed address", cmd)
        if address.name not in self._addr_vars:
            self._bail(f"heap access through {address.name!r}, which no visible alloc defines", cmd)
        return address.name

    def _walk_while(self, cmd: While, pc: Taint) -> None:
        for _ in range(_FIXPOINT_BOUND):
            self._check_no_address_escape(cmd.condition, cmd, "a loop condition")
            body_pc = join(pc, self._taint(cmd.condition))
            before = self._snapshot()
            self._walk(cmd.body, body_pc, True)
            self._join_into(before)
            if self._state_equal(before):
                return
        self._bail(f"while ({cmd.condition}): taint fixpoint did not converge", cmd)

    def _walk_par(self, cmd: Par, pc: Taint) -> None:
        left, right = cmd.left, cmd.right
        # Observable output inside || is interleaving-ordered: undecidable here.
        for branch in (left, right):
            if self._has_observable_print(branch):
                self._bail("observable output inside a parallel composition", cmd)
        # Variable interference: one branch writes what the other touches.
        left_mod, right_mod = command_mod(left), command_mod(right)
        left_fv, right_fv = command_fv(left), command_fv(right)
        clash = (left_mod & right_fv) | (right_mod & left_fv)
        if clash:
            self._bail(
                f"parallel branches interfere on variable {sorted(clash)[0]!r}",
                cmd,
            )
        # Heap interference: conflicting accesses, even synchronized ones —
        # the surviving value is interleaving-dependent.
        left_heap = {(a.location, a.kind) for a in collect_accesses(left)}
        right_heap = {(a.location, a.kind) for a in collect_accesses(right)}
        for location, kind in left_heap:
            for other_location, other_kind in right_heap:
                same = location is None or other_location is None or location == other_location
                if same and (kind == "write" or other_kind == "write"):
                    where = location if location is not None else other_location
                    self._bail(
                        f"parallel branches interfere on heap cell [{where or '?'}]",
                        cmd,
                    )
        # Non-interfering branches commute with every schedule: analyze
        # independently and merge the (disjoint) effects.
        before = self._snapshot()
        self._walk(left, pc, True)
        left_state = self._snapshot()
        self._restore(before)
        self._walk(right, pc, True)
        self._join_into(left_state)

    def _has_observable_print(self, cmd: Command) -> bool:
        if isinstance(cmd, Print):
            return self._observable(cmd.channel)
        if isinstance(cmd, Seq):
            return self._has_observable_print(cmd.first) or self._has_observable_print(cmd.second)
        if isinstance(cmd, If):
            return self._has_observable_print(cmd.then_branch) or self._has_observable_print(
                cmd.else_branch
            )
        if isinstance(cmd, While):
            return self._has_observable_print(cmd.body)
        if isinstance(cmd, Par):
            return self._has_observable_print(cmd.left) or self._has_observable_print(cmd.right)
        if isinstance(cmd, Atomic):
            return self._has_observable_print(cmd.body)
        return False

    # -- entry ----------------------------------------------------------------

    def run(self, program: Command) -> FlowReport:
        try:
            self._walk(program, LOW, False)
        except _Bailout:
            return FlowReport("unknown", tuple(self._findings), tuple(self._reasons))
        if self._findings:
            return FlowReport("unknown", tuple(self._findings), ())
        return FlowReport("secure", (), ())


def analyze_flow(
    program: Command,
    low_inputs: Iterable[str] = (),
    high_inputs: Iterable[str] = (),
    observable: Optional[Callable[[str], bool]] = None,
    source: str = "<program>",
) -> FlowReport:
    """Run the flow analysis on ``program``.

    ``observable`` decides which output channels the attacker sees;
    by default every channel is observable (the conservative choice).
    """
    analyzer = _FlowAnalyzer(
        low_inputs=low_inputs,
        high_inputs=high_inputs,
        observable=observable if observable is not None else (lambda channel: True),
        source=source,
    )
    return analyzer.run(program)


def analyze_spec_flow(spec: ProgramSpec, source: Optional[str] = None) -> FlowReport:
    """Flow analysis of a full :class:`ProgramSpec` (inputs + channel labels)."""
    return analyze_flow(
        spec.program,
        low_inputs=spec.low_inputs,
        high_inputs=spec.high_inputs,
        observable=spec.channel_observable,
        source=source if source is not None else spec.name,
    )
