"""Pluggable lint framework over the object-language AST.

A *lint target* is one program (optionally with procedures and a
:class:`~repro.verifier.declarations.ProgramSpec`); each registered
:class:`LintRule` maps a target to zero or more structured
:class:`~repro.analysis.diagnostics.Diagnostic` values.  On top of the
purely syntactic rules (L-codes), a target with enough context also runs
the lockset race detector (R-codes) and, when sensitivity labels are
known, the flow analysis (F-codes).

Targets come from three places:

* catalogue case studies (``lint_case``) — full spec context, all rules;
* explicit ``.prog`` files — parsed as (threaded) programs;
* Python files (``examples/``, ``src/repro/casestudies/``) — module-level
  string literals that look like object-language programs are extracted
  and linted individually, named ``file.py:<line>``.

New rules register themselves with the :func:`lint_rule` decorator; the
CLI (``python -m repro lint``) and the daemon's ``lint`` op both render
whatever the registry produces, so a rule added here shows up everywhere.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Lit,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    Unshare,
    Var,
    While,
    command_fv,
    expr_fv,
)
from ..lang.desugar import threaded_equivalent
from ..lang.parser import ParseError, parse_threaded_program
from ..lang.procedures import ThreadedProgram
from ..verifier.declarations import ProgramSpec
from .diagnostics import Diagnostic, diagnostic_at, sort_diagnostics
from .flow import analyze_flow, analyze_spec_flow
from .races import check_races

#: Substrings a Python string literal must contain to be considered an
#: embedded object-language program worth parsing.
_PROGRAM_MARKERS = (":=", "atomic", "share ")


@dataclass
class LintTarget:
    """One unit of lintable code with whatever context is available."""

    source: str
    program: Optional[Command] = None
    threaded: Optional[ThreadedProgram] = None
    spec: Optional[ProgramSpec] = None
    low_inputs: Tuple[str, ...] = ()
    high_inputs: Tuple[str, ...] = ()
    parse_error: Optional[str] = None

    def commands(self) -> List[Tuple[str, Command]]:
        """Every command scope: the main program plus procedure bodies."""
        if self.threaded is not None:
            scopes = [("", self.threaded.main)]
            for procedure in self.threaded.procedures:
                scopes.append((f"procedure {procedure.name}", procedure.body))
            return scopes
        if self.program is not None:
            return [("", self.program)]
        return []

    def whole_program(self) -> Optional[Command]:
        """The structured command for whole-program analyses, desugaring
        ``fork``/``join`` when procedures are present (best effort)."""
        if self.threaded is not None:
            if not self.threaded.procedures:
                return self.threaded.main
            try:
                return threaded_equivalent(self.threaded)
            except Exception:
                return None  # malformed fork/join structure; L005 reports it
        return self.program


@dataclass(frozen=True)
class LintRule:
    code: str
    summary: str
    check: Callable[[LintTarget], Iterable[Diagnostic]]


#: Registry of syntactic lint rules, keyed by code.
LINT_RULES: Dict[str, LintRule] = {}


def lint_rule(code: str, summary: str):
    """Register a lint rule; the decorated function maps a target to
    an iterable of diagnostics."""

    def register(func: Callable[[LintTarget], Iterable[Diagnostic]]) -> Callable:
        LINT_RULES[code] = LintRule(code, summary, func)
        return func

    return register


# =============================================================================
# AST walking helpers
# =============================================================================


def _each_command(cmd: Command):
    yield cmd
    if isinstance(cmd, Seq):
        yield from _each_command(cmd.first)
        yield from _each_command(cmd.second)
    elif isinstance(cmd, If):
        yield from _each_command(cmd.then_branch)
        yield from _each_command(cmd.else_branch)
    elif isinstance(cmd, While):
        yield from _each_command(cmd.body)
    elif isinstance(cmd, Par):
        yield from _each_command(cmd.left)
        yield from _each_command(cmd.right)
    elif isinstance(cmd, Atomic):
        yield from _each_command(cmd.body)


def _read_exprs(cmd: Command) -> List[Expr]:
    """Expressions evaluated (read) by one command, non-recursively."""
    if isinstance(cmd, Assign):
        return [cmd.expr]
    if isinstance(cmd, Load):
        return [cmd.address]
    if isinstance(cmd, Store):
        return [cmd.address, cmd.expr]
    if isinstance(cmd, Alloc):
        return [cmd.expr]
    if isinstance(cmd, If):
        return [cmd.condition]
    if isinstance(cmd, While):
        return [cmd.condition]
    if isinstance(cmd, Print):
        return [cmd.expr]
    if isinstance(cmd, Atomic):
        exprs: List[Expr] = []
        if cmd.argument is not None:
            exprs.append(cmd.argument)
        if cmd.when is not None:
            exprs.append(cmd.when)
        return exprs
    if isinstance(cmd, Fork):
        return list(cmd.args)
    if isinstance(cmd, Join):
        return [cmd.token]
    return []


def _reads(cmd: Command) -> frozenset:
    result: frozenset = frozenset()
    for node in _each_command(cmd):
        for expr in _read_exprs(node):
            result |= expr_fv(expr)
    return result


def _calls(expr: Expr) -> List[str]:
    from ..lang.ast import BinOp, Call, UnOp

    if isinstance(expr, Call):
        names = [expr.function]
        for arg in expr.args:
            names.extend(_calls(arg))
        return names
    if isinstance(expr, BinOp):
        return _calls(expr.left) + _calls(expr.right)
    if isinstance(expr, UnOp):
        return _calls(expr.operand)
    return []


# =============================================================================
# Syntactic rules
# =============================================================================


@lint_rule("L001", "variable is written but never read")
def _rule_unused_variable(target: LintTarget) -> Iterable[Diagnostic]:
    for scope, cmd in target.commands():
        reads = _reads(cmd)
        first_write: Dict[str, Command] = {}
        for node in _each_command(cmd):
            if isinstance(node, (Assign, Load, Alloc, Fork)) and node.target not in first_write:
                first_write[node.target] = node
        for name, node in first_write.items():
            if name not in reads:
                where = f" in {scope}" if scope else ""
                yield diagnostic_at(
                    "L001",
                    "warning",
                    f"variable {name!r} is written but never read{where}",
                    node=node,
                    source=target.source,
                )


@lint_rule("L002", "unreachable code after a non-terminating loop")
def _rule_dead_code(target: LintTarget) -> Iterable[Diagnostic]:
    for _, cmd in target.commands():
        for node in _each_command(cmd):
            if (
                isinstance(node, Seq)
                and isinstance(node.first, While)
                and node.first.condition == Lit(True)
                and not isinstance(node.second, Skip)
            ):
                yield diagnostic_at(
                    "L002",
                    "warning",
                    "unreachable code after a loop whose condition is always true",
                    node=node.second,
                    source=target.source,
                )


@lint_rule("L003", "procedure parameter shadows an outer variable")
def _rule_shadowing(target: LintTarget) -> Iterable[Diagnostic]:
    if target.threaded is None or not target.threaded.procedures:
        return
    outer = command_fv(target.threaded.main)
    for procedure in target.threaded.procedures:
        for parameter in procedure.params:
            if parameter in outer:
                yield diagnostic_at(
                    "L003",
                    "warning",
                    f"parameter {parameter!r} of procedure {procedure.name!r} "
                    f"shadows a variable of the main program",
                    node=procedure.body,
                    source=target.source,
                )


@lint_rule("L004", "annotated atomic block never touches the shared cell")
def _rule_atomic_without_access(target: LintTarget) -> Iterable[Diagnostic]:
    for _, cmd in target.commands():
        for node in _each_command(cmd):
            if not isinstance(node, Atomic) or node.action is None:
                continue
            accessed = [
                inner
                for inner in _each_command(node.body)
                if isinstance(inner, (Load, Store))
            ]
            location: Optional[str] = None
            if target.spec is not None:
                try:
                    location = target.spec.resource_by_action(node.action).location_var
                except KeyError:
                    location = None
            if location is not None:
                accessed = [
                    inner
                    for inner in accessed
                    if isinstance(inner.address, Var) and inner.address.name == location
                ]
            if not accessed:
                cell = f"[{location}]" if location is not None else "any heap cell"
                yield diagnostic_at(
                    "L004",
                    "warning",
                    f"atomic [{node.action}] never accesses {cell} — the annotation "
                    f"declares an action the block cannot perform",
                    node=node,
                    source=target.source,
                )


@lint_rule("L005", "fork without a matching join")
def _rule_fork_without_join(target: LintTarget) -> Iterable[Diagnostic]:
    for _, cmd in target.commands():
        joins: List[Join] = [n for n in _each_command(cmd) if isinstance(n, Join)]
        for node in _each_command(cmd):
            if not isinstance(node, Fork):
                continue
            matched = any(
                j.procedure == node.procedure and node.target in expr_fv(j.token)
                for j in joins
            )
            if not matched:
                yield diagnostic_at(
                    "L005",
                    "error",
                    f"fork of {node.procedure!r} into {node.target!r} has no matching "
                    f"join — the thread's effects are unordered with the rest of the "
                    f"program",
                    node=node,
                    source=target.source,
                )


@lint_rule("L006", "declared low view is never applied")
def _rule_unapplied_low_views(target: LintTarget) -> Iterable[Diagnostic]:
    if target.spec is None:
        return
    applied: List[str] = []
    for _, cmd in target.commands():
        for node in _each_command(cmd):
            for expr in _read_exprs(node):
                applied.extend(_calls(expr))
    for decl in target.spec.resources:
        for view in decl.low_views:
            if view not in applied:
                yield diagnostic_at(
                    "L006",
                    "warning",
                    f"resource {decl.name!r} declares low view {view!r} but the "
                    f"program never applies it",
                    source=target.source,
                )


# =============================================================================
# Running lints
# =============================================================================


def run_lint(target: LintTarget) -> List[Diagnostic]:
    """All diagnostics for one target: parse errors, syntactic rules,
    lockset races, and (when labels are known) flow findings."""
    if target.parse_error is not None:
        return [
            Diagnostic(
                code="P001",
                severity="error",
                message=f"does not parse: {target.parse_error}",
                source=target.source,
            )
        ]
    diagnostics: List[Diagnostic] = []
    for rule in LINT_RULES.values():
        diagnostics.extend(rule.check(target))
    whole = target.whole_program()
    if whole is not None:
        diagnostics.extend(check_races(whole, target.spec, source=target.source))
        if target.spec is not None:
            diagnostics.extend(analyze_spec_flow(target.spec, source=target.source).findings)
        elif target.high_inputs:
            report = analyze_flow(
                whole,
                low_inputs=target.low_inputs,
                high_inputs=target.high_inputs,
                source=target.source,
            )
            diagnostics.extend(report.findings)
    return sort_diagnostics(diagnostics)


def lint_program(
    program: Command,
    spec: Optional[ProgramSpec] = None,
    source: str = "<program>",
    low_inputs: Sequence[str] = (),
    high_inputs: Sequence[str] = (),
) -> List[Diagnostic]:
    """Lint a programmatically-built command."""
    return run_lint(
        LintTarget(
            source=source,
            program=program,
            spec=spec,
            low_inputs=tuple(low_inputs),
            high_inputs=tuple(high_inputs),
        )
    )


def lint_case(case) -> List[Diagnostic]:
    """Lint a catalogue :class:`~repro.casestudies.base.CaseStudy` with
    its full specification context."""
    target = target_from_source(case.source, source=case.name)
    if target.parse_error is None:
        target.spec = case.program_spec()
    return run_lint(target)


def target_from_source(
    text: str,
    source: str,
    low_inputs: Sequence[str] = (),
    high_inputs: Sequence[str] = (),
) -> LintTarget:
    """Parse ``text`` (procedures allowed) into a lint target."""
    try:
        threaded = parse_threaded_program(text)
    except ParseError as error:
        return LintTarget(source=source, parse_error=str(error))
    return LintTarget(
        source=source,
        threaded=threaded,
        low_inputs=tuple(low_inputs),
        high_inputs=tuple(high_inputs),
    )


# =============================================================================
# File and directory collection
# =============================================================================


def _looks_like_program(text: str) -> bool:
    return any(marker in text for marker in _PROGRAM_MARKERS)


def _extract_python_targets(path: Path, root: Optional[Path]) -> List[LintTarget]:
    """Module-level string literals of ``path`` that parse as programs."""
    display_base = str(path if root is None else path.relative_to(root))
    try:
        module = pyast.parse(path.read_text())
    except SyntaxError as error:
        return [LintTarget(source=display_base, parse_error=f"python syntax error: {error}")]
    targets: List[LintTarget] = []
    for node in pyast.walk(module):
        if not isinstance(node, pyast.Constant) or not isinstance(node.value, str):
            continue
        text = node.value
        if not _looks_like_program(text):
            continue
        try:
            threaded = parse_threaded_program(text)
        except ParseError:
            continue  # a docstring or unrelated string; not a program
        if threaded.main == Skip() and not threaded.procedures:
            continue
        targets.append(
            LintTarget(source=f"{display_base}:{node.lineno}", threaded=threaded)
        )
    return targets


def collect_targets(
    paths: Sequence[Path],
    low_inputs: Sequence[str] = (),
    high_inputs: Sequence[str] = (),
) -> List[LintTarget]:
    """Lint targets for files and directories.

    ``.prog`` files are whole programs (a parse failure is a ``P001``
    diagnostic); ``.py`` files contribute their embedded program
    literals; directories are scanned recursively for both.
    """
    files: List[Tuple[Path, Optional[Path]]] = []
    for path in paths:
        if path.is_dir():
            for found in sorted(path.rglob("*.prog")) + sorted(path.rglob("*.py")):
                files.append((found, path.parent if path.parent != Path(".") else None))
        else:
            files.append((path, None))
    targets: List[LintTarget] = []
    for file_path, root in files:
        if file_path.suffix == ".py":
            targets.extend(_extract_python_targets(file_path, root))
        else:
            display = str(file_path if root is None else file_path.relative_to(root))
            target = target_from_source(
                file_path.read_text(),
                source=display,
                low_inputs=low_inputs,
                high_inputs=high_inputs,
            )
            targets.append(target)
    return targets


def lint_paths(
    paths: Sequence[Path],
    low_inputs: Sequence[str] = (),
    high_inputs: Sequence[str] = (),
) -> List[Diagnostic]:
    """Lint every target found under ``paths``."""
    diagnostics: List[Diagnostic] = []
    for target in collect_targets(paths, low_inputs=low_inputs, high_inputs=high_inputs):
        diagnostics.extend(run_lint(target))
    return sort_diagnostics(diagnostics)
