"""Static pre-verification: race detection, flow analysis, and lints.

This package is the cheap, sound tier in front of the verifier's VC
generator and SMT solver (see ``docs/ARCHITECTURE.md``):

* :mod:`repro.analysis.races` — Eraser-style lockset race detection over
  the may-happen-in-parallel structure of ``Par``/``Atomic``;
* :mod:`repro.analysis.flow` — Denning-style PC-taint flow analysis with
  sound ``secure``/``unknown`` verdicts;
* :mod:`repro.analysis.prepass` — the combination the frontend and the
  daemon use as a fast path that skips SMT discharge entirely;
* :mod:`repro.analysis.lint` — a pluggable lint framework
  (``python -m repro lint``) emitting structured diagnostics;
* :mod:`repro.analysis.diagnostics` — the shared diagnostic type with
  deterministic text/JSON rendering and baseline suppression.
"""

from .diagnostics import (
    DIAGNOSTICS_SCHEMA_VERSION,
    Baseline,
    Diagnostic,
    has_errors,
    max_severity,
    render_json,
    render_text,
    severity_counts,
    sort_diagnostics,
)
from .flow import FlowReport, analyze_flow, analyze_spec_flow
from .lint import (
    LINT_RULES,
    LintRule,
    LintTarget,
    collect_targets,
    lint_case,
    lint_paths,
    lint_program,
    lint_rule,
    run_lint,
    target_from_source,
)
from .prepass import PrepassReport, run_prepass
from .races import ATOMIC_LOCK, HeapAccess, check_races, collect_accesses

__all__ = [
    "ATOMIC_LOCK",
    "Baseline",
    "DIAGNOSTICS_SCHEMA_VERSION",
    "Diagnostic",
    "FlowReport",
    "HeapAccess",
    "LINT_RULES",
    "LintRule",
    "LintTarget",
    "PrepassReport",
    "analyze_flow",
    "analyze_spec_flow",
    "check_races",
    "collect_accesses",
    "collect_targets",
    "has_errors",
    "lint_case",
    "lint_paths",
    "lint_program",
    "lint_rule",
    "max_severity",
    "render_json",
    "render_text",
    "run_lint",
    "run_prepass",
    "severity_counts",
    "sort_diagnostics",
    "target_from_source",
]
