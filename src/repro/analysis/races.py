"""Lockset-based static race detection (Eraser, Savage et al. 1997).

A may-happen-in-parallel analysis over the structured ``Par`` composition
combined with a lockset abstraction of ``atomic``: in this semantics an
``atomic`` block executes as one indivisible step, so every atomic block
behaves as a critical section of one global lock.  Two heap accesses can
race exactly when they sit in different branches of some parallel
composition (may happen in parallel), at least one is a write, and their
locksets are disjoint — i.e. at least one of them is outside every
``atomic``.

On top of the bare lockset check, two discipline checks from the paper's
CSL layer run when a :class:`~repro.verifier.declarations.ProgramSpec` is
available:

* ``R002`` — the shared resource cell is read or written outside an
  atomic block while the resource is shared (the verifier rejects this
  too, but late, as a stage-2 analysis error; here it surfaces in
  microseconds with a source position);
* ``R003`` — a unique action is used by both branches of a parallel
  composition (unique guards cannot be split, Sec. 2.7).

This is a diagnostic analysis: it over-approximates may-happen-in-parallel
(every pair of opposite ``Par`` branches is considered concurrent) and
under-approximates aliasing (heap cells are identified by the allocating
variable).  The *sound* component of the pre-verification fast path is
:mod:`repro.analysis.flow`, which independently rejects programs whose
parallel branches interfere at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..lang.ast import (
    Alloc,
    Assign,
    Atomic,
    BinOp,
    Call,
    Command,
    Expr,
    Fork,
    If,
    Join,
    Load,
    Par,
    Print,
    Seq,
    Share,
    Skip,
    Store,
    UnOp,
    Unshare,
    Var,
    While,
)
from ..verifier.declarations import ProgramSpec
from .diagnostics import Diagnostic, diagnostic_at

#: The single global lock every ``atomic`` block holds.
ATOMIC_LOCK = "atomic"


@dataclass(frozen=True)
class HeapAccess:
    """One static heap access with the lockset held at the access site."""

    location: Optional[str]  # allocating variable, or None for computed addresses
    kind: str  # 'read' | 'write'
    lockset: frozenset
    node: Command

    def conflicts_with(self, other: "HeapAccess") -> bool:
        if self.kind == "read" and other.kind == "read":
            return False
        if self.location is not None and other.location is not None:
            if self.location != other.location:
                return False
        return not (self.lockset & other.lockset)

    def describe_location(self) -> str:
        return "?" if self.location is None else self.location


def _address_location(address: Expr) -> Optional[str]:
    return address.name if isinstance(address, Var) else None


def _guard_reads(expr: Expr, lockset: frozenset, node: Command) -> List[HeapAccess]:
    """Heap reads performed by a blocking guard's ``deref`` applications."""
    if isinstance(expr, Call):
        reads: List[HeapAccess] = []
        if expr.function == "deref" and len(expr.args) == 1:
            reads.append(HeapAccess(_address_location(expr.args[0]), "read", lockset, node))
        for arg in expr.args:
            reads.extend(_guard_reads(arg, lockset, node))
        return reads
    if isinstance(expr, BinOp):
        return _guard_reads(expr.left, lockset, node) + _guard_reads(expr.right, lockset, node)
    if isinstance(expr, UnOp):
        return _guard_reads(expr.operand, lockset, node)
    return []


def collect_accesses(cmd: Command, lockset: frozenset = frozenset()) -> List[HeapAccess]:
    """All static heap accesses in ``cmd`` with their locksets.

    ``alloc`` is not an access: the allocated cell is fresh, so it cannot
    race with anything already reachable.
    """
    if isinstance(cmd, (Skip, Assign, Share, Unshare, Print, Fork, Join)):
        return []
    if isinstance(cmd, Load):
        return [HeapAccess(_address_location(cmd.address), "read", lockset, cmd)]
    if isinstance(cmd, Store):
        return [HeapAccess(_address_location(cmd.address), "write", lockset, cmd)]
    if isinstance(cmd, Alloc):
        return []
    if isinstance(cmd, Seq):
        return collect_accesses(cmd.first, lockset) + collect_accesses(cmd.second, lockset)
    if isinstance(cmd, If):
        return collect_accesses(cmd.then_branch, lockset) + collect_accesses(cmd.else_branch, lockset)
    if isinstance(cmd, While):
        return collect_accesses(cmd.body, lockset)
    if isinstance(cmd, Par):
        return collect_accesses(cmd.left, lockset) + collect_accesses(cmd.right, lockset)
    if isinstance(cmd, Atomic):
        inner = lockset | {ATOMIC_LOCK}
        accesses = collect_accesses(cmd.body, inner)
        if cmd.when is not None:
            accesses.extend(_guard_reads(cmd.when, inner, cmd))
        return accesses
    raise TypeError(f"not a command: {cmd!r}")


def _each_par(cmd: Command):
    """Yield every ``Par`` node in ``cmd`` (pre-order)."""
    if isinstance(cmd, Seq):
        yield from _each_par(cmd.first)
        yield from _each_par(cmd.second)
    elif isinstance(cmd, If):
        yield from _each_par(cmd.then_branch)
        yield from _each_par(cmd.else_branch)
    elif isinstance(cmd, While):
        yield from _each_par(cmd.body)
    elif isinstance(cmd, Atomic):
        yield from _each_par(cmd.body)
    elif isinstance(cmd, Par):
        yield cmd
        yield from _each_par(cmd.left)
        yield from _each_par(cmd.right)


def _lockset_races(cmd: Command, source: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for par in _each_par(cmd):
        left = collect_accesses(par.left)
        right = collect_accesses(par.right)
        reported: Set[Tuple[Optional[str], str, str]] = set()
        for a in left:
            for b in right:
                if not a.conflicts_with(b):
                    continue
                key = (a.location or b.location, a.kind, b.kind)
                if key in reported:
                    continue
                reported.add(key)
                location = a.describe_location() if a.location is not None else b.describe_location()
                unlocked = a if not a.lockset else b
                diagnostics.append(
                    diagnostic_at(
                        "R001",
                        "error",
                        f"data race on heap cell [{location}]: {a.kind} and {b.kind} may "
                        f"happen in parallel with disjoint locksets "
                        f"({set(a.lockset) or '{}'} vs {set(b.lockset) or '{}'})",
                        node=unlocked.node,
                        source=source,
                    )
                )
    return diagnostics


# =============================================================================
# Spec-aware discipline checks (R002 / R003)
# =============================================================================


def _shared_cell_discipline(
    cmd: Command,
    spec: ProgramSpec,
    shared: Set[str],
    in_atomic: Optional[str],
    source: str,
    diagnostics: List[Diagnostic],
) -> None:
    """Track share phases and flag shared-cell accesses outside atomics.

    Best-effort: control-flow joins keep the union of shared resources,
    which can only add diagnostics, never hide a straight-line violation.
    """
    if isinstance(cmd, (Skip, Assign, Alloc, Print, Fork, Join)):
        return
    if isinstance(cmd, (Load, Store)):
        address = cmd.address
        kind = "read" if isinstance(cmd, Load) else "write"
        if isinstance(address, Var):
            decl = spec.resource_by_location(address.name)
            if decl is not None and decl.name in shared and in_atomic != decl.name:
                diagnostics.append(
                    diagnostic_at(
                        "R002",
                        "error",
                        f"{kind} of shared cell [{address.name}] outside an atomic "
                        f"block while resource {decl.name} is shared",
                        node=cmd,
                        source=source,
                    )
                )
        return
    if isinstance(cmd, Seq):
        _shared_cell_discipline(cmd.first, spec, shared, in_atomic, source, diagnostics)
        _shared_cell_discipline(cmd.second, spec, shared, in_atomic, source, diagnostics)
        return
    if isinstance(cmd, If):
        _shared_cell_discipline(cmd.then_branch, spec, shared, in_atomic, source, diagnostics)
        _shared_cell_discipline(cmd.else_branch, spec, shared, in_atomic, source, diagnostics)
        return
    if isinstance(cmd, While):
        _shared_cell_discipline(cmd.body, spec, shared, in_atomic, source, diagnostics)
        return
    if isinstance(cmd, Par):
        left_shared, right_shared = set(shared), set(shared)
        _shared_cell_discipline(cmd.left, spec, left_shared, in_atomic, source, diagnostics)
        _shared_cell_discipline(cmd.right, spec, right_shared, in_atomic, source, diagnostics)
        shared.clear()
        shared.update(left_shared | right_shared)
        return
    if isinstance(cmd, Atomic):
        resource = in_atomic
        if cmd.action is not None:
            try:
                resource = spec.resource_by_action(cmd.action).name
            except KeyError:
                resource = in_atomic
        _shared_cell_discipline(cmd.body, spec, shared, resource, source, diagnostics)
        return
    if isinstance(cmd, Share):
        shared.add(cmd.resource)
        return
    if isinstance(cmd, Unshare):
        shared.discard(cmd.resource)
        return
    raise TypeError(f"not a command: {cmd!r}")


def _actions_used(cmd: Command) -> frozenset:
    if isinstance(cmd, Atomic):
        used = _actions_used(cmd.body)
        if cmd.action is not None:
            used |= {cmd.action}
        return used
    if isinstance(cmd, Seq):
        return _actions_used(cmd.first) | _actions_used(cmd.second)
    if isinstance(cmd, If):
        return _actions_used(cmd.then_branch) | _actions_used(cmd.else_branch)
    if isinstance(cmd, While):
        return _actions_used(cmd.body)
    if isinstance(cmd, Par):
        return _actions_used(cmd.left) | _actions_used(cmd.right)
    return frozenset()


def _unique_action_splits(cmd: Command, spec: ProgramSpec, source: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for par in _each_par(cmd):
        overlap = _actions_used(par.left) & _actions_used(par.right)
        for name in sorted(overlap):
            try:
                decl = spec.resource_by_action(name)
            except KeyError:
                continue
            if decl.spec.action(name).is_unique:
                diagnostics.append(
                    diagnostic_at(
                        "R003",
                        "error",
                        f"unique action {name!r} is used by both branches of a "
                        f"parallel composition — unique guards cannot be split",
                        node=par,
                        source=source,
                    )
                )
    return diagnostics


def check_races(
    program: Command,
    spec: Optional[ProgramSpec] = None,
    source: str = "<program>",
) -> List[Diagnostic]:
    """Run the lockset race detector, plus R002/R003 when a spec is given."""
    diagnostics = _lockset_races(program, source)
    if spec is not None:
        shared: Set[str] = set()
        _shared_cell_discipline(program, spec, shared, None, source, diagnostics)
        diagnostics.extend(_unique_action_splits(program, spec, source))
    return diagnostics
