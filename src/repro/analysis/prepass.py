"""The combined static pre-verification pass.

``run_prepass`` is what the verifier frontend and the daemon's admission
path call: it composes the lockset race detector and the flow analysis
into one verdict —

* ``secure`` — the program is race-free under the lockset abstraction
  *and* the flow analysis proves every observable trace a function of
  the low inputs.  Action-conformance VC generation and SMT discharge
  can be skipped entirely; the security property is established without
  the abstract-commutativity argument.
* ``unknown`` — anything else; the full pipeline must run.

The prepass never claims a program *insecure*: its analyses over-
approximate, so findings (potential leaks, potential races) only appear
as diagnostics, and the verdict degrades to ``unknown``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..verifier.declarations import ProgramSpec
from .diagnostics import Diagnostic
from .flow import FlowReport, analyze_spec_flow
from .races import check_races


@dataclass(frozen=True)
class PrepassReport:
    """Outcome of the static pre-verification pass."""

    verdict: str  # 'secure' | 'unknown'
    flow: FlowReport
    race_diagnostics: Tuple[Diagnostic, ...]
    reasons: Tuple[str, ...]

    @property
    def secure(self) -> bool:
        return self.verdict == "secure"

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return self.race_diagnostics + self.flow.findings


def run_prepass(spec: ProgramSpec) -> PrepassReport:
    """Run both static analyses over a fully-specified program."""
    races = tuple(check_races(spec.program, spec, source=spec.name))
    flow = analyze_spec_flow(spec)
    reasons = list(flow.reasons)
    for diagnostic in races:
        reasons.append(f"{diagnostic.code}: {diagnostic.message}")
    for finding in flow.findings:
        reasons.append(f"{finding.code}: {finding.message}")
    if flow.secure and not races:
        return PrepassReport("secure", flow, races, ())
    return PrepassReport("unknown", flow, races, tuple(reasons))
