"""The verification daemon's worker process (:mod:`repro.server`'s arms).

One worker process per supervisor slot, spawned at daemon boot and
respawned after every kill (timeout) or crash.  Each worker owns the
expensive warm state the daemon exists to preserve — a
:class:`~repro.smt.session.SessionPool` of per-tenant incremental
:class:`~repro.smt.session.SolverSession` s, the interned term tables,
and a worker-local :class:`~repro.smt.cache.ValidityCache` seeded from
the supervisor's store at spawn — so killing a worker loses exactly that
worker's sessions and nothing else: verdicts already shipped, and every
cache delta already merged back into the supervisor, survive.

The protocol is a :mod:`multiprocessing` pipe carrying plain dicts, one
request at a time (the supervisor serializes per worker, so a worker
never sees a second ``run`` before answering the first):

* ``{"op": "run", "seq", "tenant", "namespace", "request", "sorts",
  "max_models", "fault"}`` → ``{"seq", "kind": "verdict"|"error",
  "verdict"|"reason", "cache_delta", "stats"}`` — execute one
  :class:`~repro.api.VerificationRequest` (wire form) on the tenant's
  pooled session under the tenant's cache namespace.  Every reply ships
  the validity-cache *delta* accumulated since the previous reply
  (:meth:`~repro.smt.cache.ValidityCache.export_delta`) plus a pool +
  cache stats snapshot, so the supervisor's merged view stays current
  even if this worker is killed a millisecond later.
* ``{"op": "retire", "tenant"}`` — drop the tenant's pooled session
  (policy change / supervisor-side retirement).  Fire-and-forget.
* ``{"op": "exit"}`` — leave the loop; the process ends.

**Fault injection** (the test harness of
``tests/integration/test_service_faults.py``) is honoured only when the
supervisor was constructed with ``fault_injection=True`` — the flag
travels in the spawn ``init`` dict, never over the client wire, so a
production daemon ignores ``_fault`` keys entirely.  Kinds:

* ``sleep`` — hold the GIL-free ``time.sleep`` for ``seconds`` (default
  far beyond any timeout), simulating a stuck solve the supervisor must
  SIGKILL;
* ``crash`` — ``SIGKILL`` ourselves mid-request, simulating a
  segfault-grade failure;
* ``oom`` — allocate a chunk, then ``SIGKILL`` ourselves, simulating
  the kernel OOM killer;
* ``corrupt_cache`` — tear the on-disk cache shard (truncate + garbage)
  before solving, simulating a worker killed mid-save on a pre-atomic
  store; the request itself still completes.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict, Mapping, Optional

#: Reply kinds a worker can send for a ``run`` op.
REPLY_VERDICT = "verdict"
REPLY_ERROR = "error"

#: Default stuck-solve duration for the ``sleep`` fault: far beyond any
#: sane request timeout, so the supervisor's kill is the only way out.
SLEEP_FAULT_SECONDS = 3600.0


def _apply_fault(fault: Optional[Mapping[str, Any]], cache_path: Optional[str]) -> None:
    """Run one injected fault (test harness only; no-op on None)."""
    if not fault:
        return
    kind = fault.get("kind")
    if kind == "sleep":
        time.sleep(float(fault.get("seconds", SLEEP_FAULT_SECONDS)))
    elif kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "oom":
        # Mimic the OOM killer: grab memory, then die by SIGKILL (the
        # signal the kernel actually sends), without destabilizing the
        # test host by genuinely exhausting it.
        _ballast = bytearray(int(fault.get("bytes", 8 * 1024 * 1024)))
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "corrupt_cache":
        if cache_path:
            # A torn shard: valid JSON prefix, then truncation + noise —
            # what a SIGKILL mid-write would leave on a non-atomic store.
            with open(cache_path, "w", encoding="utf-8") as handle:
                handle.write('{"version": 1, "entries": {"dead')
                handle.write("\x00garbage\x00")


def _run_one(message: Mapping[str, Any], pool, cache) -> Dict[str, Any]:
    """Execute one ``run`` op; never raises (errors become replies)."""
    from . import api
    from .smt.cache import using_cache
    from .smt.session import SolverSession

    tenant = message.get("tenant") or "default"
    namespace = message.get("namespace") or tenant
    try:
        request = api.VerificationRequest.from_wire(message["request"])
        sorts = None
        wire_sorts = message.get("sorts")
        if wire_sorts:
            sorts = {
                var: api.sort_from_wire(name) for var, name in wire_sorts.items()
            }
        max_models = message.get("max_models")
        factory = None
        if max_models is not None:
            factory = lambda: SolverSession(max_models=int(max_models))  # noqa: E731
        with using_cache(cache), cache.namespaced(namespace):
            session = pool.acquire(tenant, factory=factory)
            try:
                verdict = api.execute(request, session=session, sorts=sorts)
            finally:
                pool.release(tenant)
        return {"kind": REPLY_VERDICT, "verdict": verdict.to_wire()}
    except api.RequestError as error:
        return {"kind": REPLY_ERROR, "reason": str(error)}
    except Exception as error:  # noqa: BLE001 — a bad VC must not kill the worker
        pool.retire(tenant)
        return {
            "kind": REPLY_ERROR,
            "reason": f"internal error: {type(error).__name__}: {error}",
        }


def worker_main(conn, init: Mapping[str, Any]) -> None:
    """The worker process entry point: serve ``run`` ops until ``exit``
    (or the supervisor disappears).  ``init`` carries the warm-start
    payload: the supervisor's persistent cache snapshot, pool bounds,
    the shard path (for the corrupt_cache fault) and the fault gate."""
    # The supervisor owns lifecycle: SIGINT (a ^C aimed at the daemon)
    # must not take workers down mid-reply — the supervisor's stop path
    # ends us deliberately instead.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread (tests) — fine
        pass

    from .smt.cache import ValidityCache
    from .smt.session import SessionPool

    cache = ValidityCache()
    entries = init.get("cache_entries")
    if entries:
        cache.merge(entries)
    if init.get("cache_active", True):
        cache.enable_persistence()
    cache.reset_delta()
    pool = SessionPool(
        max_sessions=int(init.get("max_sessions", 8)),
        max_live_clauses=init.get("max_live_clauses"),
    )
    fault_injection = bool(init.get("fault_injection", False))
    cache_path = init.get("cache_path")

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # supervisor went away: nothing left to serve
        if not isinstance(message, dict):
            continue
        op = message.get("op")
        if op == "exit":
            break
        if op == "retire":
            tenant = message.get("tenant")
            if isinstance(tenant, str):
                pool.retire(tenant)
            continue
        if op != "run":
            continue
        if fault_injection:
            _apply_fault(message.get("fault"), cache_path)
        reply = _run_one(message, pool, cache)
        reply["seq"] = message.get("seq")
        reply["cache_delta"] = cache.export_delta()
        cache.reset_delta()
        reply["stats"] = {"pool": pool.stats(), "cache": cache.stats()}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


__all__ = ["REPLY_ERROR", "REPLY_VERDICT", "SLEEP_FAULT_SECONDS", "worker_main"]
