"""Command-line entry point: verify every case study and print the table.

Usage::

    python -m repro            # all case studies
    python -m repro "Figure 3" # one case study, with full detail
"""

from __future__ import annotations

import sys
import time

from .casestudies import ALL_CASES, case_by_name


def _print_all() -> int:
    width = 96
    print("=" * width)
    print("CommCSL / HyperViper reproduction — verification of all case studies")
    print("=" * width)
    failures = 0
    for case in ALL_CASES:
        start = time.perf_counter()
        result = case.verify()
        elapsed = time.perf_counter() - start
        expected = "secure" if case.expected_verified else "insecure"
        verdict = "VERIFIED" if result.verified else "REJECTED"
        ok = result.verified == case.expected_verified
        failures += not ok
        marker = "" if ok else "  <-- UNEXPECTED"
        print(f"{case.name:32s} expected {expected:8s} -> {verdict:8s} ({elapsed:5.2f}s){marker}")
        if not result.verified and result.errors:
            print(f"    reason: {result.errors[0][:90]}")
    print("=" * width)
    if failures:
        print(f"{failures} case(s) did not match their expected verdict")
        return 1
    print(f"all {len(ALL_CASES)} case studies match their expected verdicts")
    return 0


def _print_one(name: str) -> int:
    case = case_by_name(name)
    print(f"== {case.name} ==")
    print(case.description)
    print("\n--- program ---")
    print(case.source.strip())
    print("\n--- verification ---")
    result = case.verify()
    print(result.summary())
    for decl_name, report in result.validity_reports.items():
        print(f"spec {decl_name}: valid={report.valid} ({report.checks_performed} checks)")
    for conformance in result.conformance_reports:
        print(f"conformance: {conformance}")
    return 0 if result.verified == case.expected_verified else 1


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        try:
            return _print_one(argv[1])
        except KeyError as error:
            print(error)
            return 2
    return _print_all()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
