"""Command-line entry point: verify every case study and print the table.

Usage::

    python -m repro                       # all case studies
    python -m repro "Figure 3"            # one case study, with full detail
    python -m repro --jobs 4              # fan independent VCs over 4 workers
    python -m repro --cache-dir .vcache   # persistent validity cache: the
                                          # second run starts warm (decisive
                                          # verdicts keyed by stable term
                                          # fingerprints survive the process)

``--cache-dir`` loads ``<dir>/validity_cache.json`` before verifying and
saves it (merged with any concurrent writers) afterwards; the final
summary line reports in-memory vs persistent hit counts.  ``--jobs 0``
uses every core.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .casestudies import ALL_CASES, case_by_name
from .parallel import default_jobs
from .smt.cache import GLOBAL as VALIDITY_CACHE

CACHE_FILENAME = "validity_cache.json"


def _print_all(jobs: int) -> int:
    width = 96
    print("=" * width)
    print("CommCSL / HyperViper reproduction — verification of all case studies")
    print("=" * width)
    failures = 0
    for case in ALL_CASES:
        start = time.perf_counter()
        result = case.verify(jobs=jobs)
        elapsed = time.perf_counter() - start
        expected = "secure" if case.expected_verified else "insecure"
        verdict = "VERIFIED" if result.verified else "REJECTED"
        ok = result.verified == case.expected_verified
        failures += not ok
        marker = "" if ok else "  <-- UNEXPECTED"
        print(f"{case.name:32s} expected {expected:8s} -> {verdict:8s} ({elapsed:5.2f}s){marker}")
        if not result.verified and result.errors:
            print(f"    reason: {result.errors[0][:90]}")
    print("=" * width)
    if failures:
        print(f"{failures} case(s) did not match their expected verdict")
        return 1
    print(f"all {len(ALL_CASES)} case studies match their expected verdicts")
    return 0


def _print_one(name: str, jobs: int) -> int:
    case = case_by_name(name)
    print(f"== {case.name} ==")
    print(case.description)
    print("\n--- program ---")
    print(case.source.strip())
    print("\n--- verification ---")
    result = case.verify(jobs=jobs)
    print(result.summary())
    for decl_name, report in result.validity_reports.items():
        print(f"spec {decl_name}: valid={report.valid} ({report.checks_performed} checks)")
    for conformance in result.conformance_reports:
        print(f"conformance: {conformance}")
    return 0 if result.verified == case.expected_verified else 1


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Verify the paper's case studies.",
    )
    parser.add_argument(
        "case",
        nargs="?",
        default=None,
        help="verify one case study by name (default: all, as a table)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent VC discharge (0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"persist the validity cache to DIR/{CACHE_FILENAME} across runs",
    )
    args = parser.parse_args(argv[1:])
    jobs = default_jobs() if args.jobs == 0 else max(1, args.jobs)

    cache_path = None
    if args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        cache_path = cache_dir / CACHE_FILENAME
        loaded = VALIDITY_CACHE.load(cache_path)
        print(f"validity cache: loaded {loaded} persistent entr{'y' if loaded == 1 else 'ies'} from {cache_path}")

    try:
        if args.case is not None:
            status = _print_one(args.case, jobs)
        else:
            status = _print_all(jobs)
    except KeyError as error:
        print(error)
        return 2

    if cache_path is not None:
        saved = VALIDITY_CACHE.save(cache_path)
        stats = VALIDITY_CACHE.stats()
        print(
            f"validity cache: {stats['hits']} memory hits, "
            f"{stats['persistent_hits']} persistent hits, "
            f"{stats['misses']} misses; saved {saved} entries to {cache_path}"
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
