"""Command-line entry point: verify case studies, or run the service.

Usage::

    python -m repro                        # verify all case studies
    python -m repro "Figure 3"             # one case study, full detail
    python -m repro --jobs 4               # fan VCs over 4 workers
    python -m repro --cache-dir .vcache    # persistent validity cache

    python -m repro serve  --socket /tmp/repro.sock --cache-dir .vcache
    python -m repro client --socket /tmp/repro.sock "Figure 3" "Figure 1"
    python -m repro client --socket /tmp/repro.sock --all --tenant team-a
    python -m repro client --socket /tmp/repro.sock --stats
    python -m repro bench  --repeat 2      # cold vs warm batch timings

    python -m repro lint examples/ src/repro/casestudies/
    python -m repro lint --cases --format json
    python -m repro lint examples/ --write-baseline lint_baseline.json

The bare form (no subcommand) is the ``verify`` subcommand and behaves
exactly as it always has; ``serve`` boots the long-lived verification
daemon (:mod:`repro.server`), ``client`` talks to it over its unix
socket (or ``--host``/``--port``), ``bench`` measures cold-vs-warm
batch times through the :mod:`repro.api` facade, and ``lint`` runs the
static analyses of :mod:`repro.analysis` (lockset races, flow leaks,
lint rules) over program files, embedded Python literals, or the case
catalogue — no solver involved.  ``--jobs``/``--cache-dir`` are shared
plumbing: ``--jobs 0`` uses every core, and ``--cache-dir`` loads
``<dir>/validity_cache.json`` before verifying and saves it (merged
with concurrent writers) afterwards.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import api
from .parallel import default_jobs

CACHE_FILENAME = api.CACHE_FILENAME

SUBCOMMANDS = ("verify", "serve", "client", "bench", "lint", "fuzz")


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------


def _add_shared(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent VC discharge (0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"persist the validity cache to DIR/{CACHE_FILENAME} across runs",
    )


def _resolve_jobs(jobs: int) -> int:
    return default_jobs() if jobs == 0 else max(1, jobs)


class _CacheScope:
    """CLI-side explicit cache handle: load before, save + report after.

    The cache is constructed here and installed as the scoped default —
    no reaching into the deprecated process singleton.  ``report()`` is
    explicit (not part of ``__exit__``) so error paths can skip the
    save, exactly as the historical flat CLI did.
    """

    def __init__(self, cache_dir: Optional[str]) -> None:
        from .smt.cache import ValidityCache, using_cache

        self.cache = ValidityCache()
        self.path: Optional[Path] = None
        self._using = using_cache
        self._scope = None
        if cache_dir is not None:
            directory = Path(cache_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self.path = directory / CACHE_FILENAME
            loaded = self.cache.load(self.path)
            print(
                f"validity cache: loaded {loaded} persistent "
                f"entr{'y' if loaded == 1 else 'ies'} from {self.path}"
            )

    def __enter__(self) -> "_CacheScope":
        self._scope = self._using(self.cache)
        self._scope.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._scope.__exit__(*exc)

    def report(self) -> None:
        if self.path is None:
            return
        saved = self.cache.save(self.path)
        stats = self.cache.stats()
        print(
            f"validity cache: {stats['hits']} memory hits, "
            f"{stats['persistent_hits']} persistent hits, "
            f"{stats['misses']} misses; saved {saved} entries to {self.path}"
        )


# ---------------------------------------------------------------------------
# verify (the default, back-compatible subcommand)
# ---------------------------------------------------------------------------


def _print_all(jobs: int, static_prepass: bool = True) -> int:
    from .casestudies import ALL_CASES

    width = 96
    print("=" * width)
    print("CommCSL / HyperViper reproduction — verification of all case studies")
    print("=" * width)
    failures = 0
    for case in ALL_CASES:
        verdict = api.execute(
            api.VerificationRequest(case=case.name, static_prepass=static_prepass),
            jobs=jobs,
        )
        expected = "secure" if case.expected_verified else "insecure"
        outcome = "VERIFIED" if verdict.verified else "REJECTED"
        ok = verdict.ok
        failures += not ok
        marker = "" if ok else "  <-- UNEXPECTED"
        print(
            f"{case.name:32s} expected {expected:8s} -> {outcome:8s} "
            f"({verdict.elapsed:5.2f}s){marker}"
        )
        if not verdict.verified and verdict.errors:
            print(f"    reason: {verdict.errors[0][:90]}")
    print("=" * width)
    if failures:
        print(f"{failures} case(s) did not match their expected verdict")
        return 1
    print(f"all {len(ALL_CASES)} case studies match their expected verdicts")
    return 0


def _print_one(name: str, jobs: int, static_prepass: bool = True) -> int:
    from .casestudies import case_by_name

    case = case_by_name(name)
    print(f"== {case.name} ==")
    print(case.description)
    print("\n--- program ---")
    print(case.source.strip())
    print("\n--- verification ---")
    verdict = api.execute(
        api.VerificationRequest(case=case.name, static_prepass=static_prepass),
        jobs=jobs,
    )
    print(f"{verdict.name}: {'VERIFIED' if verdict.verified else 'REJECTED'}")
    if verdict.prepass == "secure":
        print("  (discharged by the static information-flow prepass — no SMT)")
    for error in verdict.errors:
        print(f"  error: {error}")
    for obligation in verdict.obligations:
        print(f"  obligation: {obligation}")
    for decl_name, valid, checks in verdict.validity:
        print(f"spec {decl_name}: valid={valid} ({checks} checks)")
    for conformance in verdict.conformance:
        print(f"conformance: {conformance}")
    return 0 if verdict.ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    jobs = _resolve_jobs(args.jobs)
    scope = _CacheScope(args.cache_dir)
    static_prepass = not getattr(args, "no_static_prepass", False)
    with scope:
        try:
            if args.case is not None:
                status = _print_one(args.case, jobs, static_prepass)
            else:
                status = _print_all(jobs, static_prepass)
        except (KeyError, api.RequestError) as error:
            print(error)
            return 2
    scope.report()
    return status


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import VerificationServer

    if args.socket is None and args.host is None:
        print("serve: pass --socket PATH (or --host/--port)", file=sys.stderr)
        return 2
    server = VerificationServer(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        max_sessions=args.max_sessions,
        vc_budget=args.vc_budget,
        batch_limit=args.batch_limit,
        timeout=args.timeout,
        workers=args.workers,
        queue_deadline=args.queue_deadline,
        fault_injection=args.enable_fault_injection,
    )
    server.run(announce=True)
    return 0


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------


def _client_endpoint(args: argparse.Namespace):
    from .client import ServiceClient

    if args.socket is None and args.host is None:
        print("client: pass --socket PATH (or --host/--port)", file=sys.stderr)
        raise SystemExit(2)
    return ServiceClient(socket_path=args.socket, host=args.host, port=args.port)


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .client import ServiceError, requests_for_cases

    try:
        with _client_endpoint(args) as client:
            if args.shutdown:
                client.shutdown()
                print("daemon asked to shut down")
                return 0
            if args.stats:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            names = list(args.cases)
            if args.all or not names:
                from .casestudies import ALL_CASES

                names = [case.name for case in ALL_CASES]
            requests = requests_for_cases(names)
            failures = 0
            outcome = None
            for event in client.stream_batch(requests, tenant=args.tenant):
                kind = event.get("event")
                if kind == "accepted":
                    print(f"daemon accepted batch of {event['count']} (tenant {args.tenant})")
                elif kind == "verdict":
                    verdict = api.Verdict.from_wire(event["verdict"])
                    marker = "" if verdict.ok else "  <-- UNEXPECTED"
                    failures += not verdict.ok
                    outcome_str = "VERIFIED" if verdict.verified else "REJECTED"
                    print(
                        f"{verdict.name:32s} -> {outcome_str:8s} "
                        f"({verdict.elapsed:5.2f}s){marker}"
                    )
                elif kind in ("rejected", "timeout", "error", "worker_crash", "retry_after"):
                    failures += 1
                    index = event.get("index", "-")
                    print(f"request {index}: {kind}: {event.get('reason')}")
                elif kind == "done":
                    stats = event.get("stats", {})
                    pool = stats.get("pool", {})
                    cache = stats.get("cache", {})
                    print(
                        f"batch done in {event.get('elapsed', 0.0):.2f}s — "
                        f"sessions reused {pool.get('reused', 0)}, "
                        f"cache hits {cache.get('hits', 0)} "
                        f"(+{cache.get('persistent_hits', 0)} persistent)"
                    )
            return 1 if failures else 0
    except ServiceError as error:
        print(f"client: {error}", file=sys.stderr)
        return 2


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------


def _cmd_bench(args: argparse.Namespace) -> int:
    """Cold-vs-warm batch timing through the facade (or a daemon)."""
    from .casestudies import ALL_CASES

    names = list(args.cases) or [case.name for case in ALL_CASES]
    requests = [api.VerificationRequest(case=name) for name in names]
    jobs = _resolve_jobs(args.jobs)

    if args.socket is not None or args.host is not None:
        with _client_endpoint(args) as client:
            timings = []
            for round_index in range(args.repeat):
                outcome = client.run_batch(requests, tenant=args.tenant)
                timings.append(outcome.elapsed)
                print(f"round {round_index + 1}: {outcome.elapsed:.3f}s (ok={outcome.ok})")
        if len(timings) > 1 and timings[-1] > 0:
            print(f"warm speedup: x{timings[0] / timings[-1]:.1f}")
        return 0

    scope = _CacheScope(args.cache_dir)
    with scope:
        from .smt.session import SolverSession

        session = SolverSession()
        timings = []
        for round_index in range(args.repeat):
            start = time.perf_counter()
            report = api.verify_batch(requests, session=session, jobs=jobs)
            elapsed = time.perf_counter() - start
            timings.append(elapsed)
            print(
                f"round {round_index + 1}: {elapsed:.3f}s "
                f"(ok={report.ok}, session queries={report.stats['session']['queries']})"
            )
        if len(timings) > 1 and timings[-1] > 0:
            print(f"warm speedup: x{timings[0] / timings[-1]:.1f}")
    scope.report()
    return 0


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis only: exit 1 on error-severity findings (after
    baseline suppression), 0 otherwise, 2 on usage errors."""
    from .analysis import (
        Baseline,
        has_errors,
        lint_case,
        lint_paths,
        render_json,
        render_text,
        sort_diagnostics,
    )

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"lint: no such path: {path}", file=sys.stderr)
            return 2
    if not paths and not args.cases:
        print("lint: pass program paths and/or --cases", file=sys.stderr)
        return 2

    diagnostics = lint_paths(paths, low_inputs=args.low, high_inputs=args.high)
    if args.cases:
        from .casestudies import ALL_CASES, case_by_name

        names = args.case_names or [case.name for case in ALL_CASES]
        try:
            for name in names:
                diagnostics.extend(lint_case(case_by_name(name)))
        except KeyError as error:
            print(f"lint: {error}", file=sys.stderr)
            return 2
    diagnostics = sort_diagnostics(diagnostics)

    if args.write_baseline is not None:
        baseline = Baseline.from_diagnostics(diagnostics)
        baseline.save(Path(args.write_baseline))
        print(
            f"wrote baseline with {len(diagnostics)} suppression(s) "
            f"to {args.write_baseline}"
        )
        return 0

    suppressed = 0
    if args.baseline is not None:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, KeyError) as error:
            print(f"lint: cannot read baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
        diagnostics, suppressed = baseline.apply(diagnostics)

    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
        if suppressed:
            print(f"({suppressed} baselined finding(s) suppressed)")
    return 1 if has_errors(diagnostics) else 0


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Run the static analyses (lockset races, information "
        "flow, lint rules) without the verifier or the solver.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".prog files, .py files with embedded program literals, or "
        "directories to scan recursively",
    )
    parser.add_argument(
        "--cases",
        action="store_true",
        help="also lint the case-study catalogue (with full spec context)",
    )
    parser.add_argument(
        "--case",
        dest="case_names",
        action="append",
        default=[],
        metavar="NAME",
        help="lint one catalogue case by name (implies --cases; repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--low",
        action="append",
        default=[],
        metavar="VAR",
        help="treat VAR as a low (public) input for flow analysis (repeatable)",
    )
    parser.add_argument(
        "--high",
        action="append",
        default=[],
        metavar="VAR",
        help="treat VAR as a high (secret) input for flow analysis (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE (see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    return parser


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def _build_verify_parser(prog: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Verify the paper's case studies.",
        epilog=(
            "subcommands: serve (verification daemon), client (talk to a "
            "daemon), bench (cold/warm batch timing) — "
            "see `python -m repro <subcommand> --help`"
        ),
    )
    parser.add_argument(
        "case",
        nargs="?",
        default=None,
        help="verify one case study by name (default: all, as a table)",
    )
    parser.add_argument(
        "--no-static-prepass",
        action="store_true",
        help="disable the static pre-verification fast path (always run "
        "VC generation + SMT discharge; verdicts are unchanged, only "
        "wall-clock time)",
    )
    _add_shared(parser)
    return parser


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the long-lived verification daemon.",
    )
    parser.add_argument("--socket", default=None, metavar="PATH", help="unix socket to listen on")
    parser.add_argument("--host", default=None, help="TCP host to listen on (e.g. 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    parser.add_argument("--max-sessions", type=int, default=8, help="solver-session pool size")
    parser.add_argument(
        "--vc-budget",
        type=int,
        default=None,
        help="per-request VC admission budget",
    )
    parser.add_argument(
        "--batch-limit", type=int, default=None, help="max requests per batch"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-request wall-clock budget (s)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (warm solver slots; default 2)",
    )
    parser.add_argument(
        "--queue-deadline",
        type=float,
        default=None,
        help="seconds a request may wait for a busy worker before being "
        "shed with retry_after (default 30)",
    )
    parser.add_argument(
        "--enable-fault-injection",
        action="store_true",
        help="honour _fault hooks in batch requests (tests/chaos drills only)",
    )
    _add_shared(parser)
    return parser


def _build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro client",
        description="Send a verification batch to a running daemon.",
    )
    parser.add_argument("cases", nargs="*", help="case-study names (default: the full corpus)")
    parser.add_argument("--socket", default=None, metavar="PATH", help="daemon unix socket")
    parser.add_argument("--host", default=None, help="daemon TCP host")
    parser.add_argument("--port", type=int, default=None, help="daemon TCP port")
    parser.add_argument("--tenant", default="default", help="tenant name (cache namespace)")
    parser.add_argument("--all", action="store_true", help="send the full corpus")
    parser.add_argument("--stats", action="store_true", help="print daemon stats and exit")
    parser.add_argument("--shutdown", action="store_true", help="ask the daemon to exit")
    _add_shared(parser)
    return parser


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .fuzz import FuzzConfig, check_case, failure_kind, load_repro, run_campaign
    from .smt.session import SolverSession

    if args.inject_unsound:
        from .fuzz import install_unsound_hook

        # Testing-only: force-verify every mutated case so the campaign
        # demonstrably catches and shrinks an unsound verdict.
        install_unsound_hook(lambda case: case.mutation is not None)

    with _CacheScope(args.cache_dir) as scope:
        if args.repro:
            # Replay mode: re-run the differential oracle on repro files.
            exit_code = 0
            session = SolverSession()
            for path in args.repro:
                case, recorded = load_repro(path)
                outcome = check_case(
                    case, session=session, schedules=args.schedules,
                    exhaustive_budget=args.exhaustive_budget, seed=args.seed,
                )
                kind = failure_kind(outcome) or "no-failure"
                marker = "REPRODUCED" if kind == recorded else "CHANGED"
                if kind == "no-failure":
                    marker = "NOT REPRODUCED"
                    exit_code = 1
                print(
                    f"{path}: recorded {recorded}, now {kind} -> {marker} "
                    f"(verified={outcome.verified}, "
                    f"empirical={outcome.empirical_secure}, mode={outcome.empirical_mode})"
                )
            scope.report()
            return exit_code

        config = FuzzConfig(
            seed=args.seed,
            count=args.count,
            budget=args.budget,
            shrink=not args.no_shrink,
            schedules=args.schedules,
            exhaustive_budget=args.exhaustive_budget,
            repro_dir=args.repro_dir,
        )

        def progress(index: int, outcome) -> None:
            if args.verbose:
                kind = failure_kind(outcome) or "ok"
                print(
                    f"[{index}] {outcome.case.name} {outcome.case.family}"
                    f"{' +' + outcome.case.mutation if outcome.case.mutation else ''}: "
                    f"verified={outcome.verified} prepass={outcome.prepass} "
                    f"empirical={outcome.empirical_secure} ({outcome.empirical_mode}) {kind}"
                )
            elif index and index % 50 == 0:
                print(f"... {index} cases", flush=True)

        report = run_campaign(config, progress=progress)
        scope.report()

    counters = report["counters"]
    print(
        f"fuzz: seed {report['seed']}, {report['generated']}/{report['requested']} cases "
        f"in {report['elapsed_s']}s"
        + (" (budget exhausted)" if report["budget_exhausted"] else "")
    )
    print(
        f"  verdicts: {counters['verified']} verified, {counters['rejected']} rejected; "
        f"prepass fast path fired {counters['prepass_secure']}x "
        f"({counters['differential_runs']} differential reruns)"
    )
    print(
        f"  empirical: {counters['exhaustive']} exhaustive, {counters['sampled']} sampled, "
        f"{counters['executions']} executions, {counters['leaks_observed']} leaks observed"
    )
    for entry in report["soundness_failures"]:
        print(
            f"  SOUNDNESS FAILURE: {entry['case']} ({entry['family']}"
            f"{', ' + entry['mutation'] if entry['mutation'] else ''}) — "
            f"shrunk to {entry.get('shrunk_statements', entry['statements'])} statements"
            + (f", repro at {entry['repro']}" if "repro" in entry else "")
        )
    for entry in report["prepass_disagreements"]:
        print(f"  PREPASS DISAGREEMENT: {entry['case']} ({entry['family']})")
    for entry in report["runtime_errors"]:
        print(f"  RUNTIME ERROR: {entry['case']}: {entry['runtime_error']}")
    if report["ok"]:
        print("  no soundness failures, no prepass disagreements")

    if args.report is not None:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(json.dumps(report, indent=2, default=str) + "\n")
        print(f"  report written to {args.report}")
    return 0 if report["ok"] else 1


def _build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description=(
            "Differential soundness fuzzing: generate adversarial concurrent "
            "programs and compare verifier verdicts (prepass on/off) against "
            "empirical noninterference under the concrete scheduler."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    parser.add_argument("--count", type=int, default=200, help="cases to generate (default 200)")
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="stop generating after this much wall-clock time",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging minimization of failing cases",
    )
    parser.add_argument(
        "--schedules", type=int, default=10,
        help="random schedules per input variant in sampled mode (default 10)",
    )
    parser.add_argument(
        "--exhaustive-budget", type=int, default=2000,
        help="max interleavings for exhaustive enumeration (default 2000)",
    )
    parser.add_argument(
        "--report", default=None, metavar="FILE", help="write the JSON report to FILE"
    )
    parser.add_argument(
        "--repro-dir", default=None, metavar="DIR",
        help="write minimized .prog repro files for failures into DIR",
    )
    parser.add_argument(
        "--repro", nargs="*", default=None, metavar="FILE",
        help="replay repro files instead of generating (exit 1 if not reproduced)",
    )
    parser.add_argument(
        "--inject-unsound", action="store_true",
        help="TESTING: force-verify mutated cases to prove the oracle catches them",
    )
    parser.add_argument("--verbose", action="store_true", help="per-case progress lines")
    _add_shared(parser)
    return parser


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Measure cold-vs-warm batch verification time.",
    )
    parser.add_argument("cases", nargs="*", help="case-study names (default: the full corpus)")
    parser.add_argument("--repeat", type=int, default=2, help="batch rounds (default 2)")
    parser.add_argument("--socket", default=None, metavar="PATH", help="bench a daemon instead")
    parser.add_argument("--host", default=None, help="daemon TCP host")
    parser.add_argument("--port", type=int, default=None, help="daemon TCP port")
    parser.add_argument("--tenant", default="default", help="tenant for daemon benches")
    _add_shared(parser)
    return parser


def main(argv: List[str]) -> int:
    if len(argv) > 1 and argv[1] in SUBCOMMANDS:
        command, rest = argv[1], argv[2:]
        if command == "verify":
            args = _build_verify_parser("python -m repro verify").parse_args(rest)
            return _cmd_verify(args)
        if command == "serve":
            parser = _build_serve_parser()
            args = parser.parse_args(rest)
            from . import server as server_module

            if args.vc_budget is None:
                args.vc_budget = server_module.DEFAULT_VC_BUDGET
            if args.batch_limit is None:
                args.batch_limit = server_module.DEFAULT_BATCH_LIMIT
            if args.timeout is None:
                args.timeout = server_module.DEFAULT_TIMEOUT
            if args.workers is None:
                args.workers = server_module.DEFAULT_WORKERS
            if args.queue_deadline is None:
                args.queue_deadline = server_module.DEFAULT_QUEUE_DEADLINE
            return _cmd_serve(args)
        if command == "client":
            args = _build_client_parser().parse_args(rest)
            return _cmd_client(args)
        if command == "lint":
            args = _build_lint_parser().parse_args(rest)
            if args.case_names:
                args.cases = True
            return _cmd_lint(args)
        if command == "fuzz":
            args = _build_fuzz_parser().parse_args(rest)
            return _cmd_fuzz(args)
        args = _build_bench_parser().parse_args(rest)
        return _cmd_bench(args)
    # Bare invocation: the historical interface, byte-compatible.
    args = _build_verify_parser("python -m repro").parse_args(argv[1:])
    return _cmd_verify(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
